#pragma once

#include <variant>
#include <vector>

#include "consensus/snapshot.h"
#include "consensus/types.h"
#include "kv/command.h"

namespace praft::raft {

using consensus::LogIndex;
using consensus::Term;

struct Entry {
  Term term = 0;
  kv::Command cmd;

  friend bool operator==(const Entry&, const Entry&) = default;
};

struct RequestVote {
  Term term = 0;
  NodeId candidate = kNoNode;
  LogIndex last_index = 0;
  Term last_term = 0;

  friend bool operator==(const RequestVote&, const RequestVote&) = default;
};

struct VoteReply {
  Term term = 0;
  NodeId voter = kNoNode;
  bool granted = false;

  friend bool operator==(const VoteReply&, const VoteReply&) = default;
};

struct AppendEntries {
  Term term = 0;
  NodeId leader = kNoNode;
  LogIndex prev_index = 0;
  Term prev_term = 0;
  std::vector<Entry> entries;
  LogIndex commit = 0;

  friend bool operator==(const AppendEntries&, const AppendEntries&) = default;
};

struct AppendReply {
  Term term = 0;
  NodeId follower = kNoNode;
  bool ok = false;
  LogIndex match_index = 0;    // on success: prev + |entries|
  LogIndex conflict_hint = 0;  // on failure: where the leader should back off

  friend bool operator==(const AppendReply&, const AppendReply&) = default;
};

/// Snapshot state transfer (Raft §7): the leader ships its retained
/// checkpoint to a follower whose nextIndex fell behind the leader's
/// compacted log prefix. Replaces replaying the discarded entries.
struct InstallSnapshot {
  Term term = 0;
  NodeId leader = kNoNode;
  consensus::Snapshot snap;

  friend bool operator==(const InstallSnapshot&,
                         const InstallSnapshot&) = default;
};

struct InstallSnapshotReply {
  Term term = 0;
  NodeId follower = kNoNode;
  LogIndex last_index = 0;  // follower's applied watermark after the install

  friend bool operator==(const InstallSnapshotReply&,
                         const InstallSnapshotReply&) = default;
};

using Message = std::variant<RequestVote, VoteReply, AppendEntries, AppendReply,
                             InstallSnapshot, InstallSnapshotReply>;

// Exact encoded frame sizes (see raft/wire.cpp for the field layout; every
// size below is frame header + the payload fields in declaration order).
namespace wire = consensus::wire;

inline size_t wire_size(const RequestVote&) {
  return wire::kFrame + 8 + 4 + 8 + 8;
}
inline size_t wire_size(const VoteReply&) { return wire::kFrame + 8 + 4 + 1; }
inline size_t wire_size(const AppendReply&) {
  return wire::kFrame + 8 + 4 + 1 + 8 + 8;
}
inline size_t wire_size(const InstallSnapshot& m) {
  return wire::kFrame + 8 + 4 + m.snap.wire_bytes();
}
inline size_t wire_size(const InstallSnapshotReply&) {
  return wire::kFrame + 8 + 4 + 8;
}
inline size_t wire_size(const AppendEntries& m) {
  size_t b = wire::kFrame + 8 + 4 + 8 + 8 + 8 + wire::kCount;
  for (const auto& e : m.entries) b += wire::entry_bytes(e.cmd);
  return b;
}

inline size_t wire_size(const Message& m) {
  return std::visit([](const auto& x) { return wire_size(x); }, m);
}

}  // namespace praft::raft
