#pragma once

#include "net/wire.h"
#include "raft/messages.h"

namespace praft::raft {

/// Flat-frame codec for the Raft message family (net/wire.h layout,
/// Family::kRaft, opcode = variant alternative index). encode() produces
/// exactly wire_size(m) bytes and decode() inverts it.
net::Frame encode(const Message& m, net::BufferPool& pool);
Message decode(net::FrameView f);

}  // namespace praft::raft
