#pragma once

#include "common/rng.h"
#include "kv/command.h"

namespace praft::kv {

/// The paper's YCSB-like closed-loop workload (§5 "Workload"): each client
/// issues get/put back-to-back; with probability `conflict_rate` it touches
/// one globally popular record; otherwise it draws uniformly from its own
/// region's partition of the key space.
struct WorkloadConfig {
  double read_fraction = 0.9;    // Fig. 9 default: 90% reads
  double conflict_rate = 0.05;   // Fig. 9 default: 5%
  uint64_t num_records = 100'000;
  uint32_t value_size = 8;       // bytes; Fig. 10 uses 8 B and 4 KB
  int num_partitions = 1;        // one per region (key space pre-partitioned)
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadConfig& cfg, int partition, Rng rng);

  /// Next operation for `client` with client-local sequence number `seq`.
  Command next(NodeId client, uint64_t seq);

 private:
  WorkloadConfig cfg_;
  uint64_t shard_lo_;
  uint64_t shard_size_;
  Rng rng_;
  uint64_t value_counter_ = 1;
};

}  // namespace praft::kv
