#include "kv/workload.h"

#include "common/check.h"

namespace praft::kv {

namespace {
// The popular record every conflicting access touches. Kept outside all
// region shards (key space starts at 1) so conflict_rate is exact.
constexpr uint64_t kHotKey = 0;
}  // namespace

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig& cfg, int partition,
                                     Rng rng)
    : cfg_(cfg), rng_(rng) {
  PRAFT_CHECK(cfg.num_partitions > 0);
  PRAFT_CHECK(partition >= 0 && partition < cfg.num_partitions);
  const uint64_t per = cfg.num_records / static_cast<uint64_t>(cfg.num_partitions);
  PRAFT_CHECK_MSG(per > 0, "too many partitions for key space");
  shard_lo_ = 1 + static_cast<uint64_t>(partition) * per;
  shard_size_ = per;
}

Command WorkloadGenerator::next(NodeId client, uint64_t seq) {
  Command c;
  c.client = client;
  c.seq = seq;
  c.value_size = cfg_.value_size;
  c.op = rng_.chance(cfg_.read_fraction) ? Op::kGet : Op::kPut;
  c.key = rng_.chance(cfg_.conflict_rate) ? kHotKey
                                          : shard_lo_ + rng_.below(shard_size_);
  if (c.op == Op::kPut) c.value = value_counter_++;
  return c;
}

}  // namespace praft::kv
