#include "kv/store.h"

#include <algorithm>

namespace praft::kv {

ApplyResult KvStore::apply(const Command& cmd) {
  ++applied_;
  switch (cmd.op) {
    case Op::kNoop:
      return {};
    case Op::kGet: {
      auto it = map_.find(cmd.key);
      if (it == map_.end()) return {};
      return {it->second.value, it->second.version};
    }
    case Op::kPut: {
      auto& cell = map_[cmd.key];
      cell.value = cmd.value;
      ++cell.version;
      return {cell.value, cell.version};
    }
  }
  return {};
}

uint64_t KvStore::read_local(uint64_t key) const {
  auto it = map_.find(key);
  return it == map_.end() ? 0 : it->second.value;
}

StoreImage KvStore::image() const {
  StoreImage img;
  img.cells.reserve(map_.size());
  // praft-lint: allow(D1 cells are sorted by key below; order never escapes)
  for (const auto& [k, cell] : map_) {
    img.cells.push_back(StoreImage::Cell{k, cell.value, cell.version});
  }
  std::sort(img.cells.begin(), img.cells.end(),
            [](const StoreImage::Cell& a, const StoreImage::Cell& b) {
              return a.key < b.key;
            });
  img.applied_count = applied_;
  return img;
}

void KvStore::restore(const StoreImage& img) {
  map_.clear();
  map_.reserve(img.cells.size());
  for (const StoreImage::Cell& c : img.cells) {
    map_[c.key] = Cell{c.value, c.version};
  }
  applied_ = img.applied_count;
}

uint64_t KvStore::fingerprint() const {
  // XOR of per-entry mixes: order-insensitive, collision-unlikely for tests.
  uint64_t h = 0x9e3779b97f4a7c15ull;
  // praft-lint: allow(D1 XOR accumulation is commutative; order-insensitive)
  for (const auto& [k, cell] : map_) {
    uint64_t x = k * 0xbf58476d1ce4e5b9ull;
    x ^= cell.value + 0x94d049bb133111ebull + (x << 6) + (x >> 2);
    x ^= cell.version * 0x2545f4914f6cdd1dull;
    x = (x ^ (x >> 33)) * 0xff51afd7ed558ccdull;
    h ^= x ^ (x >> 29);
  }
  return h;
}

}  // namespace praft::kv
