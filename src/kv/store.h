#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kv/command.h"

namespace praft::kv {

/// Result of applying one command to the store.
struct ApplyResult {
  uint64_t value = 0;   // for kGet: current value token (0 if absent)
  uint64_t version = 0; // store version of the key after the operation
};

/// Serialized state-machine image: the payload of a consensus snapshot
/// (checkpoint-driven log compaction ships these instead of replaying the
/// log). Cells are sorted by key so equal states serialize identically.
struct StoreImage {
  struct Cell {
    uint64_t key = 0;
    uint64_t value = 0;
    uint64_t version = 0;

    friend bool operator==(const Cell&, const Cell&) = default;
  };
  std::vector<Cell> cells;
  uint64_t applied_count = 0;

  /// Exact wire size: applied_count u64 + cell count u32 + 24 B cells
  /// (snapshot transfers are the big messages compaction trades log replay
  /// for).
  [[nodiscard]] size_t wire_bytes() const { return 12 + cells.size() * 24; }

  friend bool operator==(const StoreImage&, const StoreImage&) = default;
};

/// The replicated state machine: a key -> (value token, version) map.
/// Deterministic and side-effect free; every replica applies the same command
/// sequence and must reach the same state (checked in tests by fingerprint).
class KvStore {
 public:
  ApplyResult apply(const Command& cmd);

  /// Point read without going through the log (used by lease-based local
  /// reads; the *protocol* is responsible for deciding when this is legal).
  [[nodiscard]] uint64_t read_local(uint64_t key) const;

  [[nodiscard]] size_t size() const { return map_.size(); }
  [[nodiscard]] uint64_t applied_count() const { return applied_; }

  /// Order-insensitive fingerprint of the full state; equal states hash equal.
  [[nodiscard]] uint64_t fingerprint() const;

  /// Serializes the full state (sorted by key — deterministic across
  /// replicas holding equal states).
  [[nodiscard]] StoreImage image() const;

  /// Replaces the full state with `img` (snapshot install). The previous
  /// contents are discarded: the image IS the state after the covered prefix.
  void restore(const StoreImage& img);

 private:
  struct Cell {
    uint64_t value = 0;
    uint64_t version = 0;
  };
  std::unordered_map<uint64_t, Cell> map_;
  uint64_t applied_ = 0;
};

}  // namespace praft::kv
