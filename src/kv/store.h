#pragma once

#include <cstdint>
#include <unordered_map>

#include "kv/command.h"

namespace praft::kv {

/// Result of applying one command to the store.
struct ApplyResult {
  uint64_t value = 0;   // for kGet: current value token (0 if absent)
  uint64_t version = 0; // store version of the key after the operation
};

/// The replicated state machine: a key -> (value token, version) map.
/// Deterministic and side-effect free; every replica applies the same command
/// sequence and must reach the same state (checked in tests by fingerprint).
class KvStore {
 public:
  ApplyResult apply(const Command& cmd);

  /// Point read without going through the log (used by lease-based local
  /// reads; the *protocol* is responsible for deciding when this is legal).
  [[nodiscard]] uint64_t read_local(uint64_t key) const;

  [[nodiscard]] size_t size() const { return map_.size(); }
  [[nodiscard]] uint64_t applied_count() const { return applied_; }

  /// Order-insensitive fingerprint of the full state; equal states hash equal.
  [[nodiscard]] uint64_t fingerprint() const;

 private:
  struct Cell {
    uint64_t value = 0;
    uint64_t version = 0;
  };
  std::unordered_map<uint64_t, Cell> map_;
  uint64_t applied_ = 0;
};

}  // namespace praft::kv
