#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace praft::kv {

enum class Op : uint8_t {
  kNoop = 0,  // consensus-internal filler (leader no-ops, Mencius skips)
  kGet = 1,
  kPut = 2,
};

/// A state-machine command. Values are modeled as (token, size): the token is
/// a 64-bit stand-in for the payload contents (sufficient for linearizability
/// checking) and `value_size` is the modeled wire size used for bandwidth
/// accounting — the paper's 8 B vs 4 KB workloads differ only here.
struct Command {
  Op op = Op::kNoop;
  uint64_t key = 0;
  uint64_t value = 0;
  uint32_t value_size = 8;
  NodeId client = kNoNode;
  uint64_t seq = 0;

  [[nodiscard]] bool is_noop() const { return op == Op::kNoop; }
  [[nodiscard]] bool is_read() const { return op == Op::kGet; }
  [[nodiscard]] bool is_write() const { return op == Op::kPut; }

  /// Exact wire size of this command inside a log entry / message:
  /// op u8 + key u64 + value u64 + value_size u32 + client i32 + seq u64,
  /// then value_size opaque payload bytes for writes (the modeled value).
  [[nodiscard]] size_t wire_bytes() const {
    constexpr size_t kFields = 1 + 8 + 8 + 4 + 4 + 8;
    return kFields + (op == Op::kPut ? value_size : 0);
  }

  friend bool operator==(const Command& a, const Command& b) {
    return a.op == b.op && a.key == b.key && a.value == b.value &&
           a.client == b.client && a.seq == b.seq;
  }
};

/// Builds a no-op command (used by leaders at term start and Mencius skips).
inline Command noop_command() { return Command{}; }

}  // namespace praft::kv
