#include "shard/sharded_cluster.h"

#include <algorithm>

#include "common/check.h"
#include "harness/log_server.h"

namespace praft::shard {

ShardedCluster::ShardedCluster(ShardedClusterConfig cfg)
    : cfg_(std::move(cfg)), sim_(cfg_.seed), net_(sim_, cfg_.latency),
      map_(cfg_.num_groups) {
  PRAFT_CHECK(cfg_.num_groups > 0);
  PRAFT_CHECK(cfg_.num_machines > 0);
  PRAFT_CHECK_MSG(cfg_.replicas_per_group > 0 &&
                      cfg_.replicas_per_group <= cfg_.num_machines,
                  "each group member needs its own machine");
  PRAFT_CHECK(!cfg_.protocols.empty());
}

int ShardedCluster::member_machine(int g, int j) const {
  // Stride placement: consecutive members of one group land on machines a
  // stride apart, so a group's replica set spans the machine pool and
  // consecutive groups' preferred leaders (member 0) land on consecutive
  // machines. With M == R the spread set degenerates to "every machine
  // hosts every group" and the preferred leader of group g is machine
  // g mod M — the Mencius-style round-robin of the ISSUE. Co-located mode
  // drops the g offset: every group uses the same machines, all preferred
  // leaders pile onto machine 0 (the ablation baseline).
  const int m = cfg_.num_machines;
  const int stride = std::max(1, m / cfg_.replicas_per_group);
  const int base = cfg_.spread_leaders ? g : 0;
  return (base + j * stride) % m;
}

const std::string& ShardedCluster::protocol_of(int g) const {
  return cfg_.protocols[static_cast<size_t>(g) % cfg_.protocols.size()];
}

std::unique_ptr<harness::ReplicaServer> ShardedCluster::make_group_server(
    int g, int j) {
  Group& grp = groups_[static_cast<size_t>(g)];
  consensus::Group cg = grp.group_template;
  cg.self = grp.hosts[static_cast<size_t>(j)]->id();
  return std::make_unique<harness::LogServer>(
      *grp.hosts[static_cast<size_t>(j)], std::move(cg), cfg_.costs,
      grp.protocol, cfg_.timing, grp.stores[static_cast<size_t>(j)].get());
}

void ShardedCluster::build() {
  PRAFT_CHECK_MSG(groups_.empty(), "build called twice");
  for (int m = 0; m < cfg_.num_machines; ++m) {
    machine_cpus_.push_back(std::make_unique<sim::SerialResource>());
  }
  groups_.resize(static_cast<size_t>(cfg_.num_groups));
  // First pass: every group's hosts, so member ids are known before any
  // server starts. Replicas co-located on one machine share that machine's
  // serial CPU (and its site for latency purposes) but keep distinct
  // network endpoints — one process per group per machine.
  for (int g = 0; g < cfg_.num_groups; ++g) {
    Group& grp = groups_[static_cast<size_t>(g)];
    grp.protocol = protocol_of(g);
    for (int j = 0; j < cfg_.replicas_per_group; ++j) {
      const int m = member_machine(g, j);
      grp.hosts.push_back(std::make_unique<harness::NodeHost>(
          sim_, net_, machine_site(m), 0.0,
          machine_cpus_[static_cast<size_t>(m)].get()));
      grp.group_template.members.push_back(grp.hosts.back()->id());
      grp.stores.push_back(std::make_unique<storage::DurableStore>());
    }
    grp.group_template.self = kNoNode;
  }
  for (int g = 0; g < cfg_.num_groups; ++g) {
    Group& grp = groups_[static_cast<size_t>(g)];
    for (int j = 0; j < cfg_.replicas_per_group; ++j) {
      grp.servers.push_back(make_group_server(g, j));
      grp.servers.back()->start();
    }
  }
  // Client path: each group's contact is its preferred-leader replica
  // (member 0) under the placement policy.
  router_ = std::make_unique<ShardRouter>(map_);
  for (int g = 0; g < cfg_.num_groups; ++g) {
    router_->set_target(g, replica_id(g, 0));
  }
}

int ShardedCluster::leader_of(int g) const {
  const Group& grp = groups_[static_cast<size_t>(g)];
  for (size_t j = 0; j < grp.servers.size(); ++j) {
    if (grp.servers[j] == nullptr) continue;  // crashed, awaiting restart
    const NodeId id = grp.servers[j]->id();
    // A crashed or fault-cut replica may still believe it leads.
    if (!net_.node_up(id) || net_.faults().is_down(id, sim_.now())) continue;
    if (grp.servers[j]->is_leader()) return static_cast<int>(j);
  }
  return -1;
}

int ShardedCluster::establish_leaders(Duration deadline) {
  PRAFT_CHECK_MSG(!groups_.empty(), "build before establish_leaders");
  const auto led = [this] {
    int n = 0;
    for (int g = 0; g < num_groups(); ++g) {
      if (!replica_up(g, 0)) continue;
      if (server(g, 0).leaderless() || leader_of(g) >= 0) ++n;
    }
    return n;
  };
  // Head start for every group's preferred leader, all in parallel — the
  // groups are independent, so N elections cost one election's wall time.
  for (int g = 0; g < num_groups(); ++g) {
    if (server(g, 0).leaderless()) continue;
    sim_.after(msec(1), [this, g] {
      if (replica_up(g, 0)) server(g, 0).trigger_election();
    });
  }
  const Time limit = sim_.now() + deadline;
  int have = led();
  while (have < num_groups() && sim_.now() < limit) {
    sim_.run_for(msec(50));
    have = led();
  }
  return have;
}

std::vector<NodeId> ShardedCluster::machine_node_ids(int m) const {
  std::vector<NodeId> ids;
  for (int g = 0; g < num_groups(); ++g) {
    for (int j = 0; j < replicas_per_group(); ++j) {
      if (member_machine(g, j) == m) ids.push_back(replica_id(g, j));
    }
  }
  return ids;
}

void ShardedCluster::crash_group_replica(int g, int j) {
  Group& grp = groups_[static_cast<size_t>(g)];
  auto& server = grp.servers[static_cast<size_t>(j)];
  if (server == nullptr) return;  // already down
  if (auto* ls = dynamic_cast<harness::LogServer*>(server.get())) {
    // The incarnation's coverage counters die with it; bank them first.
    retired_revocations_ += ls->node_iface().revocations_started();
    retired_pipeline_rollbacks_ += ls->node_iface().pipeline_rollbacks();
  }
  harness::NodeHost& host = *grp.hosts[static_cast<size_t>(j)];
  // Same ordering discipline as Cluster::crash_replica: invalidate every
  // scheduled closure and unbind deliveries BEFORE freeing the node.
  host.invalidate_scheduled();
  host.detach();
  server.reset();
  grp.stores[static_cast<size_t>(j)]->drop_unsynced();
}

void ShardedCluster::install_probes_on(int g, int j) {
  Group& grp = groups_[static_cast<size_t>(g)];
  auto* ls = dynamic_cast<harness::LogServer*>(
      grp.servers[static_cast<size_t>(j)].get());
  if (ls == nullptr) return;
  if (grp.apply_probe) ls->set_apply_probe(grp.apply_probe);
  if (grp.snapshot_probe) ls->set_snapshot_probe(grp.snapshot_probe);
  const NodeId id = ls->id();
  if (grp.watermark_probe) {
    ls->node_iface().set_watermark_probe(
        [probe = grp.watermark_probe, id](consensus::LogIndex commit,
                                          consensus::LogIndex applied) {
          probe(id, commit, applied);
        });
  }
  if (grp.hard_state_probe) {
    ls->node_iface().set_hard_state_probe(
        [probe = grp.hard_state_probe, id](const consensus::HardState& hs) {
          probe(id, hs);
        });
  }
}

void ShardedCluster::restart_group_replica(int g, int j) {
  Group& grp = groups_[static_cast<size_t>(g)];
  if (replica_up(g, j)) return;
  grp.servers[static_cast<size_t>(j)] = make_group_server(g, j);
  install_probes_on(g, j);
  grp.servers[static_cast<size_t>(j)]->start();
  ++restarts_;
  if (grp.restart_probe) {
    auto* ls = dynamic_cast<harness::LogServer*>(
        grp.servers[static_cast<size_t>(j)].get());
    PRAFT_CHECK(ls != nullptr);
    grp.restart_probe(ls->id(), ls->node_iface().hard_state(), ls->recovery(),
                      ls->node_iface().applied_index());
  }
}

void ShardedCluster::crash_machine(int m) {
  for (int g = 0; g < num_groups(); ++g) {
    for (int j = 0; j < replicas_per_group(); ++j) {
      if (member_machine(g, j) == m) crash_group_replica(g, j);
    }
  }
}

void ShardedCluster::restart_machine(int m) {
  for (int g = 0; g < num_groups(); ++g) {
    for (int j = 0; j < replicas_per_group(); ++j) {
      if (member_machine(g, j) == m && !replica_up(g, j)) {
        restart_group_replica(g, j);
      }
    }
  }
}

void ShardedCluster::add_clients(int per_machine, const kv::WorkloadConfig& wl,
                                 Time start_at) {
  PRAFT_CHECK_MSG(router_ != nullptr, "build before clients");
  kv::WorkloadConfig cfg = wl;
  // Keys are pre-partitioned per client machine (same discipline as the
  // single-group harness); the hash map then spreads each partition's keys
  // over every group, so all groups see traffic from all machines.
  cfg.num_partitions = cfg_.num_machines;
  for (int m = 0; m < cfg_.num_machines; ++m) {
    for (int c = 0; c < per_machine; ++c) {
      client_hosts_.push_back(
          std::make_unique<harness::NodeHost>(sim_, net_, machine_site(m)));
      kv::WorkloadGenerator gen(cfg, m, sim_.rng().split());
      ShardClient::Options copt;
      copt.start_at = start_at;
      clients_.push_back(std::make_unique<ShardClient>(
          *client_hosts_.back(), *router_, std::move(gen), metrics_, copt));
      if (reply_probe_) clients_.back()->set_reply_probe(reply_probe_);
      clients_.back()->start();
    }
  }
}

uint64_t ShardedCluster::client_retries() const {
  uint64_t total = 0;
  for (const auto& c : clients_) total += c->retries();
  return total;
}

void ShardedCluster::install_apply_probe(int g, ApplyProbe probe) {
  groups_[static_cast<size_t>(g)].apply_probe = std::move(probe);
  for (int j = 0; j < replicas_per_group(); ++j) {
    if (replica_up(g, j)) install_probes_on(g, j);
  }
}

void ShardedCluster::install_watermark_probe(int g, WatermarkProbe probe) {
  groups_[static_cast<size_t>(g)].watermark_probe = std::move(probe);
  for (int j = 0; j < replicas_per_group(); ++j) {
    if (replica_up(g, j)) install_probes_on(g, j);
  }
}

void ShardedCluster::install_snapshot_probe(int g, SnapshotProbe probe) {
  groups_[static_cast<size_t>(g)].snapshot_probe = std::move(probe);
  for (int j = 0; j < replicas_per_group(); ++j) {
    if (replica_up(g, j)) install_probes_on(g, j);
  }
}

void ShardedCluster::install_hard_state_probe(int g, HardStateProbe probe) {
  groups_[static_cast<size_t>(g)].hard_state_probe = std::move(probe);
  for (int j = 0; j < replicas_per_group(); ++j) {
    if (replica_up(g, j)) install_probes_on(g, j);
  }
}

void ShardedCluster::set_restart_probe(int g, RestartProbe probe) {
  groups_[static_cast<size_t>(g)].restart_probe = std::move(probe);
}

void ShardedCluster::install_reply_probe(ReplyProbe probe) {
  reply_probe_ = std::move(probe);
  for (auto& c : clients_) c->set_reply_probe(reply_probe_);
}

}  // namespace praft::shard
