#pragma once

#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "consensus/types.h"
#include "kv/command.h"
#include "shard/shard_map.h"

namespace praft::shard {

/// The invariant sharding adds ON TOP of per-group consensus: every client
/// operation is applied in exactly the group that owns its key, and never in
/// more than one group. Per-group safety (agreement, exactly-once apply,
/// linearizability) is the existing chaos::InvariantChecker's job, run once
/// per group; this checker watches the seams BETWEEN groups, where a
/// routing bug, a mis-owned forward, or a stale shard map would not trip
/// any single group's checker.
class CrossGroupChecker {
 public:
  explicit CrossGroupChecker(ShardMap map) : map_(map) {}

  /// Feed every (group, replica, index, command) apply across the whole
  /// deployment. Noops (leader no-ops, Mencius skips) are group-internal
  /// filler and carry no key.
  void on_apply(int group, NodeId replica, consensus::LogIndex idx,
                const kv::Command& cmd) {
    if (cmd.is_noop()) return;
    const int owner = map_.owner_of(cmd.key);
    if (owner != group) {
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    "op (c=%d, s=%llu) on key %llu applied in group %d at "
                    "r=%d idx=%lld, but group %d owns the key",
                    cmd.client, static_cast<unsigned long long>(cmd.seq),
                    static_cast<unsigned long long>(cmd.key), group, replica,
                    static_cast<long long>(idx), owner);
      violation(buf);
    }
    // Exactly one group: replicas WITHIN a group all apply the same op (that
    // is agreement working); the same (client, seq) surfacing in a second
    // group means it was routed, forwarded or replayed across a shard
    // boundary.
    const uint64_t key = op_key(cmd);
    auto [it, inserted] = seen_.try_emplace(key, group);
    if (!inserted && it->second != group) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "op (c=%d, s=%llu) applied in group %d AND group %d "
                    "(cross-group apply)",
                    cmd.client, static_cast<unsigned long long>(cmd.seq),
                    it->second, group);
      violation(buf);
    }
  }

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }

 private:
  static uint64_t op_key(const kv::Command& cmd) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(cmd.client)) << 40) ^
           cmd.seq;
  }

  void violation(std::string what) {
    if (violations_.size() < 8) violations_.push_back(std::move(what));
  }

  ShardMap map_;
  std::unordered_map<uint64_t, int> seen_;  // (client, seq) -> first group
  std::vector<std::string> violations_;
};

}  // namespace praft::shard
