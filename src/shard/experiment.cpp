#include "shard/experiment.h"

#include "common/check.h"
#include "shard/sharded_cluster.h"

namespace praft::shard {

ShardExperimentResult run_shard_experiment(const ShardExperimentConfig& cfg) {
  ShardedClusterConfig cc;
  cc.num_groups = cfg.num_groups;
  cc.num_machines = cfg.num_machines;
  cc.replicas_per_group = cfg.replicas_per_group;
  cc.spread_leaders = cfg.spread_leaders;
  cc.protocols = {cfg.protocol};
  cc.timing = cfg.timing;
  cc.seed = cfg.seed;
  cc.costs.enabled = cfg.model_cpu;
  if (cfg.flat_rtt >= 0) {
    // One latency site per machine: uniform RTT everywhere, and per-site
    // metrics stay per-machine.
    cc.latency = sim::LatencyMatrix(cfg.num_machines, cfg.flat_rtt);
  }
  ShardedCluster cluster(std::move(cc));
  cluster.build();

  ShardExperimentResult res;
  res.groups_led = cluster.establish_leaders();
  PRAFT_CHECK_MSG(res.groups_led == cfg.num_groups,
                  "not every group elected a leader");

  const Time t0 = cluster.sim().now();
  cluster.metrics().set_window(t0 + cfg.warmup, t0 + cfg.warmup + cfg.run);
  cluster.add_clients(cfg.clients_per_machine, cfg.workload, t0);
  cluster.run_until(t0 + cfg.warmup + cfg.run + cfg.cooldown);

  res.throughput_ops = cluster.metrics().throughput_ops();
  res.client_retries = cluster.client_retries();
  std::vector<SiteId> all_sites;
  for (SiteId s = 0; s < cluster.net().latency().num_sites(); ++s) {
    all_sites.push_back(s);
  }
  res.reads = harness::summarize(cluster.metrics().merged_reads(all_sites));
  res.writes = harness::summarize(cluster.metrics().merged_writes(all_sites));
  return res;
}

}  // namespace praft::shard
