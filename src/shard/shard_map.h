#pragma once

#include <cstdint>

#include "common/check.h"

namespace praft::shard {

/// Partitions the KV key space across N independent consensus groups.
///
/// This PR ships the hash strategy (a splitmix64 finalizer modulo N — a
/// fixed, statistically balanced mapping with no coordination state), but
/// the *interface* is the seam a range-split/rebalance layer plugs into
/// later: routing and invariant code only ever ask `owner_of(key)`, never
/// assume the mapping is a hash, and a future range map (with per-range
/// epochs and movable boundaries) slots in behind the same call.
class ShardMap {
 public:
  explicit ShardMap(int num_groups) : num_groups_(num_groups) {
    PRAFT_CHECK(num_groups > 0);
  }

  [[nodiscard]] int num_groups() const { return num_groups_; }

  /// The group that owns `key`. Deterministic, total, and stable for the
  /// lifetime of the map — every router and every invariant checker sees
  /// the same owner for the same key.
  [[nodiscard]] int owner_of(uint64_t key) const {
    return static_cast<int>(mix(key) % static_cast<uint64_t>(num_groups_));
  }

 private:
  /// splitmix64 finalizer: sequential keys (the workload generator draws
  /// from contiguous per-partition ranges) spread uniformly over groups.
  static uint64_t mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  int num_groups_;
};

}  // namespace praft::shard
