#pragma once

#include "harness/client.h"
#include "harness/host.h"
#include "harness/metrics.h"
#include "kv/workload.h"
#include "shard/router.h"

namespace praft::shard {

/// Closed-loop client for a sharded deployment: identical discipline to
/// harness::ClosedLoopClient (issue, wait, record, repeat, with a retry
/// timer), except the destination is not one fixed server — every command
/// is routed through the ShardRouter to the replica contact of the group
/// that owns its key.
class ShardClient final : public harness::PacketHandler {
 public:
  using Options = harness::ClientOptions;

  ShardClient(harness::NodeHost& host, const ShardRouter& router,
              kv::WorkloadGenerator gen, harness::Metrics& metrics,
              Options opt = {});

  void start();
  void stop() { stopped_ = true; }
  void handle(const net::Packet& p) override;

  /// Trace hook: observes every accepted reply plus the group the command
  /// was routed to (cross-group invariants pair this with apply traces).
  using ReplyProbe = std::function<void(int group, const kv::Command& cmd,
                                        uint64_t value, bool ok, Time sent_at,
                                        Time recv_at)>;
  void set_reply_probe(ReplyProbe probe) { reply_probe_ = std::move(probe); }

  [[nodiscard]] uint64_t completed() const { return completed_; }
  [[nodiscard]] uint64_t retries() const { return retries_; }

 private:
  void issue_next();
  void transmit();
  void arm_retry(uint64_t seq);

  harness::NodeHost& host_;
  const ShardRouter& router_;
  kv::WorkloadGenerator gen_;
  harness::Metrics& metrics_;
  Options opt_;

  kv::Command current_;
  Time sent_at_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t completed_ = 0;
  uint64_t retries_ = 0;
  bool in_flight_ = false;
  bool stopped_ = false;
  ReplyProbe reply_probe_;
};

}  // namespace praft::shard
