#pragma once

#include <string>

#include "consensus/timing.h"
#include "harness/experiment.h"
#include "kv/workload.h"
#include "sim/latency.h"

namespace praft::shard {

/// One sharded throughput point: N groups of one protocol over M machines,
/// sharded closed-loop clients on every machine, measured over a trimmed
/// window — the scale-out counterpart of harness::ExperimentConfig.
struct ShardExperimentConfig {
  std::string protocol = "raft";
  int num_groups = 4;
  int num_machines = 5;
  int replicas_per_group = 5;
  bool spread_leaders = true;
  consensus::TimingOptions timing;
  /// Uniform all-pairs RTT; < 0 uses the aws5 geo matrix.
  Duration flat_rtt = -1;
  kv::WorkloadConfig workload;
  int clients_per_machine = 50;
  Duration run = sec(10);
  Duration warmup = sec(2);
  Duration cooldown = sec(1);
  uint64_t seed = 1;
  bool model_cpu = true;
};

struct ShardExperimentResult {
  double throughput_ops = 0;  // aggregate across all groups
  harness::LatencySummary reads, writes;
  int groups_led = 0;         // groups with an established leader
  uint64_t client_retries = 0;
};

/// Builds the sharded deployment, establishes every group's preferred
/// leader, runs the sharded closed-loop workload, and returns aggregate
/// figures.
ShardExperimentResult run_shard_experiment(const ShardExperimentConfig& cfg);

}  // namespace praft::shard
