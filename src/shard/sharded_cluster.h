#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "consensus/group.h"
#include "consensus/timing.h"
#include "harness/client.h"
#include "harness/cost_model.h"
#include "harness/host.h"
#include "harness/metrics.h"
#include "harness/server.h"
#include "kv/workload.h"
#include "shard/client.h"
#include "shard/router.h"
#include "shard/shard_map.h"
#include "sim/network.h"
#include "sim/resources.h"
#include "sim/simulator.h"
#include "storage/wal.h"

namespace praft::shard {

/// World configuration for a sharded deployment: N independent consensus
/// groups over M physical machines. Each group is a replicas_per_group-way
/// replica set; each machine hosts one replica of every group placed on it,
/// and all replicas co-located on a machine contend for that machine's one
/// serial CPU (harness::NodeHost's shared-CPU mode) — co-locating leaders
/// therefore costs real throughput, which is exactly what the placement
/// ablation measures.
struct ShardedClusterConfig {
  int num_groups = 4;
  int num_machines = 5;
  int replicas_per_group = 5;
  /// Leader/member placement. Spread (the default, Mencius-style balancing
  /// at the group level): group g's members sit on machines
  /// (g + j*stride) mod M, so its preferred leader machine is g mod M and
  /// leaders land on distinct machines while N <= M. Co-located (the
  /// ablation baseline): every group uses the same member machines, so all
  /// preferred leaders pile onto machine 0.
  bool spread_leaders = true;
  /// Per-group consensus protocol, by registry name. One entry applies to
  /// all groups; otherwise group g runs protocols[g % size].
  std::vector<std::string> protocols = {"raft"};
  consensus::TimingOptions timing;
  sim::LatencyMatrix latency = sim::LatencyMatrix::aws5();
  harness::CostModel costs;
  uint64_t seed = 1;
};

/// Builds and owns a sharded deployment over ONE shared simulated runtime:
/// a simulator + network, M machine CPUs, N groups of name-built replica
/// servers (each group its own consensus::Group, DurableStores and
/// independent leader), the ShardMap/ShardRouter client path, and sharded
/// closed-loop clients. The per-group surface mirrors harness::Cluster
/// (probes, crash/restart, leader queries) so chaos invariants run
/// unchanged per group; machine-level crash/restart and fault targeting
/// hit every group a machine serves at once.
class ShardedCluster {
 public:
  explicit ShardedCluster(ShardedClusterConfig cfg);

  /// Creates machine CPUs, hosts and servers for every group, and starts
  /// them. Call exactly once, before anything else.
  void build();

  // -- Topology ------------------------------------------------------------
  [[nodiscard]] int num_groups() const { return cfg_.num_groups; }
  [[nodiscard]] int num_machines() const { return cfg_.num_machines; }
  [[nodiscard]] int replicas_per_group() const {
    return cfg_.replicas_per_group;
  }
  /// Machine hosting member `j` of group `g` (the placement policy).
  [[nodiscard]] int member_machine(int g, int j) const;
  [[nodiscard]] int preferred_leader_machine(int g) const {
    return member_machine(g, 0);
  }
  [[nodiscard]] const ShardMap& map() const { return map_; }
  [[nodiscard]] const ShardRouter& router() const { return *router_; }
  [[nodiscard]] const std::string& protocol_of(int g) const;

  // -- Per-group accessors (the chaos GroupView surface) -------------------
  [[nodiscard]] harness::ReplicaServer& server(int g, int j) {
    return *groups_[static_cast<size_t>(g)].servers[static_cast<size_t>(j)];
  }
  [[nodiscard]] bool replica_up(int g, int j) const {
    return groups_[static_cast<size_t>(g)].servers[static_cast<size_t>(j)] !=
           nullptr;
  }
  [[nodiscard]] NodeId replica_id(int g, int j) const {
    return groups_[static_cast<size_t>(g)]
        .hosts[static_cast<size_t>(j)]
        ->id();
  }
  /// Member index currently leading group `g` (net-visible replicas only),
  /// or -1.
  [[nodiscard]] int leader_of(int g) const;

  /// Triggers each group's preferred leader and waits until every group
  /// with an elected-leader protocol leads. Returns how many groups have a
  /// leader at return (== num_groups on success; leaderless protocols count
  /// as led).
  int establish_leaders(Duration deadline = sec(30));

  // -- Machine-level chaos -------------------------------------------------
  /// Every replica endpoint on machine `m` (valid while crashed, too) — the
  /// unit fault plans target: cutting a machine cuts one replica of every
  /// group placed there.
  [[nodiscard]] std::vector<NodeId> machine_node_ids(int m) const;
  /// Power-cuts machine `m`: every group replica it hosts is destroyed
  /// (counters banked, scheduled callbacks invalidated, unsynced durable
  /// writes dropped). Group replicas elsewhere keep running.
  void crash_machine(int m);
  /// Rebuilds every crashed replica hosted on machine `m` from its durable
  /// image and starts it.
  void restart_machine(int m);
  [[nodiscard]] int64_t restarts() const { return restarts_; }
  [[nodiscard]] int64_t retired_revocations() const {
    return retired_revocations_;
  }
  [[nodiscard]] int64_t retired_pipeline_rollbacks() const {
    return retired_pipeline_rollbacks_;
  }

  // -- Clients -------------------------------------------------------------
  /// Adds `per_machine` sharded closed-loop clients next to every machine,
  /// starting at `start_at`. Each client draws keys from its machine's
  /// partition of the key space and routes every command through the
  /// ShardRouter to the owning group.
  void add_clients(int per_machine, const kv::WorkloadConfig& wl,
                   Time start_at);
  void stop_clients() {
    for (auto& c : clients_) c->stop();
  }
  [[nodiscard]] uint64_t client_retries() const;

  // -- Per-group trace hooks (chaos/invariant checking) --------------------
  using ApplyProbe = std::function<void(NodeId, consensus::LogIndex,
                                        const kv::Command&)>;
  using WatermarkProbe = std::function<void(NodeId, consensus::LogIndex,
                                            consensus::LogIndex)>;
  using SnapshotProbe =
      std::function<void(NodeId, consensus::LogIndex, uint64_t)>;
  using HardStateProbe =
      std::function<void(NodeId, const consensus::HardState&)>;
  using RestartProbe = std::function<void(
      NodeId, const consensus::HardState&, const storage::RecoveryStats&,
      consensus::LogIndex)>;
  /// Group-tagged client reply probe (one probe observes every client).
  using ReplyProbe = ShardClient::ReplyProbe;

  void install_apply_probe(int g, ApplyProbe probe);
  void install_watermark_probe(int g, WatermarkProbe probe);
  void install_snapshot_probe(int g, SnapshotProbe probe);
  void install_hard_state_probe(int g, HardStateProbe probe);
  void set_restart_probe(int g, RestartProbe probe);
  void install_reply_probe(ReplyProbe probe);

  // -- Run control ---------------------------------------------------------
  void run_until(Time t) { sim_.run_until(t); }
  void run_for(Duration d) { sim_.run_for(d); }
  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return net_; }
  harness::Metrics& metrics() { return metrics_; }

 private:
  struct Group {
    std::vector<std::unique_ptr<harness::NodeHost>> hosts;
    std::vector<std::unique_ptr<harness::ReplicaServer>> servers;
    std::vector<std::unique_ptr<storage::DurableStore>> stores;
    consensus::Group group_template;  // self = kNoNode; members = node ids
    std::string protocol;
    // Probes, re-applied to every restarted incarnation.
    ApplyProbe apply_probe;
    WatermarkProbe watermark_probe;
    SnapshotProbe snapshot_probe;
    HardStateProbe hard_state_probe;
    RestartProbe restart_probe;
  };

  [[nodiscard]] SiteId machine_site(int m) const {
    return static_cast<SiteId>(m % net_.latency().num_sites());
  }
  std::unique_ptr<harness::ReplicaServer> make_group_server(int g, int j);
  void install_probes_on(int g, int j);
  void crash_group_replica(int g, int j);
  void restart_group_replica(int g, int j);

  ShardedClusterConfig cfg_;
  sim::Simulator sim_;
  sim::Network net_;
  harness::Metrics metrics_;
  ShardMap map_;
  std::unique_ptr<ShardRouter> router_;
  std::vector<std::unique_ptr<sim::SerialResource>> machine_cpus_;
  std::vector<Group> groups_;
  std::vector<std::unique_ptr<harness::NodeHost>> client_hosts_;
  std::vector<std::unique_ptr<ShardClient>> clients_;
  ReplyProbe reply_probe_;
  int64_t restarts_ = 0;
  int64_t retired_revocations_ = 0;
  int64_t retired_pipeline_rollbacks_ = 0;
};

}  // namespace praft::shard
