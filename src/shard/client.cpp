#include "shard/client.h"

namespace praft::shard {

ShardClient::ShardClient(harness::NodeHost& host, const ShardRouter& router,
                         kv::WorkloadGenerator gen, harness::Metrics& metrics,
                         Options opt)
    : host_(host), router_(router), gen_(std::move(gen)), metrics_(metrics),
      opt_(opt) {
  host_.attach(this);
}

void ShardClient::start() {
  const Duration delay =
      opt_.start_at > host_.now() ? opt_.start_at - host_.now() : 0;
  // Same per-client jitter as the single-group client: no synchronized
  // thundering herd at t=0.
  host_.schedule(delay + static_cast<Duration>(host_.random() % 1000),
                 [this] { issue_next(); });
}

void ShardClient::issue_next() {
  if (stopped_) return;
  current_ = gen_.next(host_.id(), next_seq_++);
  in_flight_ = true;
  transmit();
}

void ShardClient::transmit() {
  sent_at_ = host_.now();
  harness::ClientRequest req{current_};
  host_.send(router_.target_of(current_.key), harness::Message{req},
             harness::wire_size(req));
  arm_retry(current_.seq);
}

void ShardClient::arm_retry(uint64_t seq) {
  host_.schedule(opt_.retry_timeout, [this, seq] {
    if (!stopped_ && in_flight_ && current_.seq == seq) {
      ++retries_;
      transmit();
    }
  });
}

void ShardClient::handle(const net::Packet& p) {
  const auto* msg = net::payload_as<harness::Message>(p);
  if (msg == nullptr) return;
  const auto* reply = std::get_if<harness::ClientReply>(msg);
  if (reply == nullptr || !in_flight_ || reply->seq != current_.seq) return;
  in_flight_ = false;
  ++completed_;
  metrics_.record(host_.now(), host_.site(), current_.is_read(),
                  host_.now() - sent_at_);
  if (reply_probe_) {
    reply_probe_(router_.group_of(current_.key), current_, reply->value,
                 reply->ok, sent_at_, host_.now());
  }
  issue_next();
}

}  // namespace praft::shard
