#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "shard/shard_map.h"

namespace praft::shard {

/// Client-side routing table: key -> owning group (via the ShardMap) ->
/// contact replica for that group. The contact is static — the group's
/// preferred-leader replica under the cluster's placement policy — so a
/// router lookup is two array reads on the client hot path. Leader movement
/// (elections, chaos faults) does not invalidate it: the contacted replica
/// submits when it leads and forwards to the real leader otherwise (the
/// same etcd-style path single-group clients already rely on).
class ShardRouter {
 public:
  explicit ShardRouter(ShardMap map)
      : map_(map), targets_(static_cast<size_t>(map.num_groups()), kNoNode) {}

  void set_target(int group, NodeId server) {
    targets_[static_cast<size_t>(group)] = server;
  }

  [[nodiscard]] const ShardMap& map() const { return map_; }
  [[nodiscard]] int group_of(uint64_t key) const { return map_.owner_of(key); }

  /// The replica endpoint a client should send an operation on `key` to.
  [[nodiscard]] NodeId target_of(uint64_t key) const {
    const NodeId t = targets_[static_cast<size_t>(map_.owner_of(key))];
    PRAFT_CHECK_MSG(t != kNoNode, "router target not set for owning group");
    return t;
  }

 private:
  ShardMap map_;
  std::vector<NodeId> targets_;  // group -> contact replica endpoint
};

}  // namespace praft::shard
