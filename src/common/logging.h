#pragma once

#include <sstream>
#include <string>

namespace praft {

/// Minimal leveled logger. Disabled by default so simulations stay fast;
/// tests and examples can enable it to trace protocol decisions.
enum class LogLevel { kOff = 0, kError, kInfo, kDebug, kTrace };

class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel lv);
  static void write(LogLevel lv, const std::string& msg);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel lv) : lv_(lv) {}
  ~LogLine() { Logger::write(lv_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lv_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace praft

#define PRAFT_LOG(lv)                                  \
  if (::praft::Logger::level() < ::praft::LogLevel::lv) \
    ;                                                  \
  else                                                 \
    ::praft::detail::LogLine(::praft::LogLevel::lv)
