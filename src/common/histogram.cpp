#include "common/histogram.h"

#include <algorithm>
#include <bit>

namespace praft {

Histogram::Histogram() : buckets_(kBuckets, 0) {}

int Histogram::bucket_index(int64_t v) {
  if (v < 0) v = 0;
  const auto u = static_cast<uint64_t>(v);
  if (u < kSub) return static_cast<int>(u);
  const int msb = 63 - std::countl_zero(u);
  const int octave = msb - kSubBits + 1;
  const int sub = static_cast<int>((u >> (msb - kSubBits)) & (kSub - 1));
  return octave * kSub + sub;
}

int64_t Histogram::bucket_midpoint(int index) {
  const int octave = index / kSub;
  const int sub = index % kSub;
  if (octave == 0) return sub;
  const int shift = octave - 1;
  const int64_t base = (static_cast<int64_t>(kSub) + sub) << shift;
  const int64_t width = int64_t{1} << shift;
  return base + width / 2;
}

void Histogram::record(int64_t value) {
  if (value < 0) value = 0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[static_cast<size_t>(bucket_index(value))];
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

int64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const auto target =
      static_cast<int64_t>(p / 100.0 * static_cast<double>(count_) + 0.5);
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen >= target && buckets_[static_cast<size_t>(i)] > 0) {
      return std::clamp(bucket_midpoint(i), min_, max_);
    }
  }
  return max_;
}

double Histogram::mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

}  // namespace praft
