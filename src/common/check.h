#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace praft {

/// Thrown when an internal invariant is violated. Tests assert on these; the
/// simulator never swallows them.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "PRAFT_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace praft

// Always-on invariant check (cheap conditions only on hot paths).
#define PRAFT_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond))                                                       \
      ::praft::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define PRAFT_CHECK_MSG(cond, msg)                                     \
  do {                                                                 \
    if (!(cond))                                                       \
      ::praft::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
