#pragma once

#include <cstdint>
#include <vector>

namespace praft {

/// Log-linear latency histogram (HdrHistogram-style): 64 octaves with 32
/// linear sub-buckets each. Records non-negative int64 values (microseconds
/// in practice) with bounded relative error (~3%).
class Histogram {
 public:
  Histogram();

  void record(int64_t value);
  void merge(const Histogram& other);
  void clear();

  /// Number of recorded samples.
  [[nodiscard]] int64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Value at percentile p in [0, 100]. Returns 0 on an empty histogram.
  [[nodiscard]] int64_t percentile(double p) const;

  [[nodiscard]] int64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] int64_t max() const { return count_ == 0 ? 0 : max_; }
  [[nodiscard]] double mean() const;

 private:
  static constexpr int kSubBits = 5;                  // 32 sub-buckets
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kBuckets = 64 * kSub;

  static int bucket_index(int64_t v);
  static int64_t bucket_midpoint(int index);

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace praft
