#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace praft {

/// Move-only type-erased callable: std::function minus the copyability
/// requirement, so closures owning move-only resources (pooled wire frames,
/// unique_ptrs) can be queued on the event loop. The simulator's event queue
/// stores these; std::function converts implicitly, so existing call sites
/// are untouched.
template <typename Sig>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  UniqueFunction() = default;
  UniqueFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  UniqueFunction(F&& f)  // NOLINT(google-explicit-constructor)
      : impl_(std::make_unique<Impl<std::decay_t<F>>>(std::forward<F>(f))) {}

  UniqueFunction(UniqueFunction&&) noexcept = default;
  UniqueFunction& operator=(UniqueFunction&&) noexcept = default;
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  R operator()(Args... args) const {
    return impl_->call(std::forward<Args>(args)...);
  }

  explicit operator bool() const { return impl_ != nullptr; }
  friend bool operator==(const UniqueFunction& f, std::nullptr_t) {
    return f.impl_ == nullptr;
  }
  friend bool operator!=(const UniqueFunction& f, std::nullptr_t) {
    return f.impl_ != nullptr;
  }

 private:
  struct Base {
    virtual ~Base() = default;
    virtual R call(Args...) = 0;
  };
  template <typename F>
  struct Impl final : Base {
    explicit Impl(F f) : fn(std::move(f)) {}
    R call(Args... args) override { return fn(std::forward<Args>(args)...); }
    F fn;
  };

  std::unique_ptr<Base> impl_;
};

}  // namespace praft
