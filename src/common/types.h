#pragma once

#include <cstdint>
#include <limits>

// Basic vocabulary types shared by every module.
namespace praft {

/// Identifies a process (replica or client endpoint) in a cluster.
using NodeId = int32_t;
inline constexpr NodeId kNoNode = -1;

/// Identifies a geographic site (datacenter/region).
using SiteId = int32_t;

/// Simulated time in microseconds since simulation start.
using Time = int64_t;
/// A span of simulated time in microseconds.
using Duration = int64_t;

inline constexpr Time kTimeMax = std::numeric_limits<Time>::max();

constexpr Duration usec(int64_t n) { return n; }
constexpr Duration msec(int64_t n) { return n * 1000; }
constexpr Duration sec(int64_t n) { return n * 1000 * 1000; }

/// Converts a microsecond duration to fractional milliseconds (for reports).
constexpr double to_ms(Duration d) { return static_cast<double>(d) / 1000.0; }

}  // namespace praft
