#pragma once

#include <cstdint>

namespace praft {

/// Deterministic, seedable PRNG (xoshiro256**). One instance per simulation;
/// protocols draw randomness only through their Env so runs are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : s_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t below(uint64_t n) { return next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Derives an independent stream (for per-node RNGs).
  Rng split() { return Rng(next() ^ 0xd1b54a32d192ed03ull); }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace praft
