#include "common/logging.h"

#include <iostream>

namespace praft {

namespace {
LogLevel g_level = LogLevel::kOff;

const char* name(LogLevel lv) {
  switch (lv) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    default: return "?";
  }
}
}  // namespace

LogLevel Logger::level() { return g_level; }
void Logger::set_level(LogLevel lv) { g_level = lv; }

void Logger::write(LogLevel lv, const std::string& msg) {
  if (lv > g_level) return;
  std::cerr << "[" << name(lv) << "] " << msg << "\n";
}

}  // namespace praft
