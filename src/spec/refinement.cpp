#include "spec/refinement.h"

#include <deque>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace praft::spec {

std::string RefinementResult::summary() const {
  std::ostringstream os;
  os << (ok ? "REFINES" : "REFINEMENT FAILS") << ": " << states
     << " B-states, " << transitions << " B-transitions ("
     << stutters << " stutters)" << (complete ? " (complete)" : " (bounded)");
  if (!ok) os << "\n  " << failure;
  return os.str();
}

namespace {

/// Is `target` reachable from `start` in 1..max_steps A-steps?
bool a_reaches(const Spec& a, const State& start, const State& target,
               size_t max_steps) {
  std::deque<std::pair<State, size_t>> frontier;
  std::unordered_map<size_t, std::vector<State>> seen;
  auto remember = [&](const State& s) {
    auto& bucket = seen[hash_state(s)];
    for (const State& k : bucket) {
      if (k == s) return false;
    }
    bucket.push_back(s);
    return true;
  };
  remember(start);
  frontier.emplace_back(start, 0);
  while (!frontier.empty()) {
    auto [s, d] = std::move(frontier.front());
    frontier.pop_front();
    if (d >= max_steps) continue;
    for (auto& [ai, next] : a.successors(s)) {
      (void)ai;
      if (next == target) return true;
      if (remember(next)) frontier.emplace_back(std::move(next), d + 1);
    }
  }
  return false;
}

}  // namespace

RefinementResult RefinementChecker::check(const Spec& b, const Spec& a,
                                          const RefinementMapping& f,
                                          const RefinementOptions& opt) {
  RefinementResult res;

  // Check initial states first: f(Init_B) must be an Init_A state.
  auto is_a_init = [&](const State& s) {
    for (const State& i : a.init()) {
      if (i == s) return true;
    }
    return false;
  };
  for (const State& b0 : b.init()) {
    if (!is_a_init(f.map(b0))) {
      res.ok = false;
      res.failure = "initial B state does not map to an initial A state";
      return res;
    }
  }

  // BFS over B's reachable states, checking every transition's image.
  std::vector<State> nodes;
  std::unordered_map<size_t, std::vector<size_t>> seen;
  std::deque<size_t> frontier;
  auto visit = [&](State s) {
    auto& bucket = seen[hash_state(s)];
    for (size_t id : bucket) {
      if (nodes[id] == s) return;
    }
    nodes.push_back(std::move(s));
    bucket.push_back(nodes.size() - 1);
    frontier.push_back(nodes.size() - 1);
  };
  for (const State& b0 : b.init()) visit(b0);

  while (!frontier.empty()) {
    if (nodes.size() >= opt.max_states) {
      res.states = nodes.size();
      res.complete = false;
      return res;
    }
    const size_t id = frontier.front();
    frontier.pop_front();
    const State bs = nodes[id];  // copy: nodes grows below
    const State as = f.map(bs);
    for (auto& [ai, bn] : b.successors(bs)) {
      ++res.transitions;
      const State an = f.map(bn);
      if (an == as) {
        ++res.stutters;  // no-op step; always allowed
      } else if (!a_reaches(a, as, an, opt.max_a_steps)) {
        res.ok = false;
        std::ostringstream os;
        os << "B step " << ai.to_string()
           << " maps to an A transition that no sequence of <= "
           << opt.max_a_steps << " A steps produces";
        res.failure = os.str();
        res.states = nodes.size();
        return res;
      }
      visit(std::move(bn));
    }
  }
  res.states = nodes.size();
  res.complete = true;
  return res;
}

}  // namespace praft::spec
