#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spec/spec.h"

namespace praft::spec {

struct CheckOptions {
  /// Exploration budget; when exceeded the result reports complete=false
  /// (bounded model checking, exactly like running TLC with small scopes).
  size_t max_states = 200'000;
  size_t max_depth = SIZE_MAX;
};

struct CheckResult {
  bool ok = true;          // no invariant violation found
  bool complete = false;   // full state space explored within the budget
  size_t states = 0;
  size_t transitions = 0;
  size_t depth = 0;        // deepest BFS layer reached
  std::string failure;     // violated invariant (when !ok)
  std::vector<std::string> trace;  // action path to the violation

  [[nodiscard]] std::string summary() const;
};

/// Explicit-state BFS model checker with canonical-state deduplication and
/// counterexample trace reconstruction.
class ModelChecker {
 public:
  static CheckResult check(const Spec& spec, const CheckOptions& opt = {});
};

}  // namespace praft::spec
