#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace praft::spec {

/// A TLA+-style value: none (unbound), booleans, integers, strings, tuples,
/// finite sets and finite functions (maps). Sets and maps keep their elements
/// sorted so every value has one canonical form — states hash and compare
/// structurally, which the model checker relies on.
class Value {
 public:
  using Tuple = std::vector<Value>;
  /// Distinct type from Tuple so both can live in one variant.
  struct Set : std::vector<Value> {  // sorted, deduped
    using std::vector<Value>::vector;
  };
  using Map = std::vector<std::pair<Value, Value>>;  // sorted by key

  Value() : v_(std::monostate{}) {}
  static Value none() { return Value(); }
  static Value boolean(bool b) { return Value(Repr(b)); }
  static Value integer(int64_t i) { return Value(Repr(i)); }
  static Value string(std::string s) { return Value(Repr(std::move(s))); }
  static Value tuple(Tuple t);
  static Value set(Set s);
  static Value map(Map m);

  [[nodiscard]] bool is_none() const { return v_.index() == 0; }
  [[nodiscard]] bool is_bool() const { return v_.index() == 1; }
  [[nodiscard]] bool is_int() const { return v_.index() == 2; }
  [[nodiscard]] bool is_string() const { return v_.index() == 3; }
  [[nodiscard]] bool is_tuple() const { return v_.index() == 4; }
  [[nodiscard]] bool is_set() const { return v_.index() == 5; }
  [[nodiscard]] bool is_map() const { return v_.index() == 6; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Tuple& as_tuple() const;
  [[nodiscard]] const Set& as_set() const;
  [[nodiscard]] const Map& as_map() const;

  // --- Tuple helpers -------------------------------------------------------
  /// Element access (tuple index must be in range).
  [[nodiscard]] const Value& at(size_t i) const;
  /// Functional update: a copy with element i replaced.
  [[nodiscard]] Value with_at(size_t i, Value v) const;

  // --- Set helpers ---------------------------------------------------------
  [[nodiscard]] bool contains(const Value& v) const;
  [[nodiscard]] Value with_added(const Value& v) const;
  [[nodiscard]] size_t size() const;

  // --- Map helpers ---------------------------------------------------------
  /// Lookup; returns none() when absent.
  [[nodiscard]] Value get(const Value& key) const;
  [[nodiscard]] Value with_put(const Value& key, Value v) const;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] size_t hash() const;

  friend bool operator==(const Value& a, const Value& b) { return a.v_ == b.v_; }
  friend bool operator<(const Value& a, const Value& b);

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, std::string, Tuple,
                            Set, Map>;
  explicit Value(Repr r) : v_(std::move(r)) {}
  Repr v_;
};

/// Convenience constructors.
inline Value V(bool b) { return Value::boolean(b); }
inline Value V(int64_t i) { return Value::integer(i); }
inline Value V(int i) { return Value::integer(i); }
inline Value V(const char* s) { return Value::string(s); }
template <typename... Ts>
Value VT(Ts&&... elems) {
  Value::Tuple t;
  (t.push_back(std::forward<Ts>(elems)), ...);
  return Value::tuple(std::move(t));
}

struct ValueHash {
  size_t operator()(const Value& v) const { return v.hash(); }
};

}  // namespace praft::spec
