#include "spec/value.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace praft::spec {

Value Value::tuple(Tuple t) { return Value(Repr(std::move(t))); }

Value Value::set(Set s) {
  std::sort(s.begin(), s.end());
  s.erase(std::unique(s.begin(), s.end()), s.end());
  return Value(Repr(std::move(s)));
}

Value Value::map(Map m) {
  std::sort(m.begin(), m.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return Value(Repr(std::move(m)));
}

bool Value::as_bool() const {
  PRAFT_CHECK_MSG(is_bool(), "Value is not a bool");
  return std::get<bool>(v_);
}
int64_t Value::as_int() const {
  PRAFT_CHECK_MSG(is_int(), "Value is not an int");
  return std::get<int64_t>(v_);
}
const std::string& Value::as_string() const {
  PRAFT_CHECK_MSG(is_string(), "Value is not a string");
  return std::get<std::string>(v_);
}
const Value::Tuple& Value::as_tuple() const {
  PRAFT_CHECK_MSG(is_tuple(), "Value is not a tuple");
  return std::get<Tuple>(v_);
}
const Value::Set& Value::as_set() const {
  PRAFT_CHECK_MSG(is_set(), "Value is not a set");
  return std::get<Set>(v_);
}
const Value::Map& Value::as_map() const {
  PRAFT_CHECK_MSG(is_map(), "Value is not a map");
  return std::get<Map>(v_);
}

const Value& Value::at(size_t i) const {
  const Tuple& t = as_tuple();
  PRAFT_CHECK_MSG(i < t.size(), "tuple index out of range");
  return t[i];
}

Value Value::with_at(size_t i, Value v) const {
  Tuple t = as_tuple();
  PRAFT_CHECK_MSG(i < t.size(), "tuple index out of range");
  t[i] = std::move(v);
  return Value::tuple(std::move(t));
}

bool Value::contains(const Value& v) const {
  const Set& s = as_set();
  return std::binary_search(s.begin(), s.end(), v);
}

Value Value::with_added(const Value& v) const {
  Set s = as_set();
  auto it = std::lower_bound(s.begin(), s.end(), v);
  if (it == s.end() || !(*it == v)) s.insert(it, v);
  return Value(Repr(std::move(s)));
}

size_t Value::size() const {
  if (is_set()) return as_set().size();
  if (is_tuple()) return as_tuple().size();
  if (is_map()) return as_map().size();
  PRAFT_CHECK_MSG(false, "size() on a scalar Value");
  return 0;
}

Value Value::get(const Value& key) const {
  const Map& m = as_map();
  auto it = std::lower_bound(
      m.begin(), m.end(), key,
      [](const auto& kv, const Value& k) { return kv.first < k; });
  if (it != m.end() && it->first == key) return it->second;
  return none();
}

Value Value::with_put(const Value& key, Value v) const {
  Map m = as_map();
  auto it = std::lower_bound(
      m.begin(), m.end(), key,
      [](const auto& kv, const Value& k) { return kv.first < k; });
  if (it != m.end() && it->first == key) {
    it->second = std::move(v);
  } else {
    m.insert(it, {key, std::move(v)});
  }
  return Value(Repr(std::move(m)));
}

bool operator<(const Value& a, const Value& b) {
  if (a.v_.index() != b.v_.index()) return a.v_.index() < b.v_.index();
  switch (a.v_.index()) {
    case 0: return false;
    case 1: return std::get<bool>(a.v_) < std::get<bool>(b.v_);
    case 2: return std::get<int64_t>(a.v_) < std::get<int64_t>(b.v_);
    case 3: return std::get<std::string>(a.v_) < std::get<std::string>(b.v_);
    case 4: return std::get<Value::Tuple>(a.v_) < std::get<Value::Tuple>(b.v_);
    case 5: return std::get<Value::Set>(a.v_) < std::get<Value::Set>(b.v_);
    case 6: return std::get<Value::Map>(a.v_) < std::get<Value::Map>(b.v_);
  }
  return false;
}

namespace {
size_t mix(size_t h, size_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}
}  // namespace

size_t Value::hash() const {
  size_t h = v_.index() * 0x2545f4914f6cdd1dull;
  switch (v_.index()) {
    case 0: break;
    case 1: h = mix(h, std::get<bool>(v_) ? 2 : 1); break;
    case 2:
      h = mix(h, static_cast<size_t>(std::get<int64_t>(v_)) *
                     0xbf58476d1ce4e5b9ull);
      break;
    case 3: h = mix(h, std::hash<std::string>{}(std::get<std::string>(v_)));
      break;
    case 4:
      for (const Value& e : std::get<Tuple>(v_)) h = mix(h, e.hash());
      break;
    case 5:
      for (const Value& e : std::get<Set>(v_)) h = mix(h, e.hash());
      break;
    case 6:
      for (const auto& [k, v] : std::get<Map>(v_)) {
        h = mix(h, k.hash());
        h = mix(h, v.hash());
      }
      break;
  }
  return h;
}

std::string Value::to_string() const {
  std::ostringstream os;
  switch (v_.index()) {
    case 0: os << "_|_"; break;
    case 1: os << (std::get<bool>(v_) ? "TRUE" : "FALSE"); break;
    case 2: os << std::get<int64_t>(v_); break;
    case 3: os << '"' << std::get<std::string>(v_) << '"'; break;
    case 4: {
      os << "<<";
      const auto& t = std::get<Tuple>(v_);
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) os << ", ";
        os << t[i].to_string();
      }
      os << ">>";
      break;
    }
    case 5: {
      os << "{";
      const auto& s = std::get<Set>(v_);
      for (size_t i = 0; i < s.size(); ++i) {
        if (i > 0) os << ", ";
        os << s[i].to_string();
      }
      os << "}";
      break;
    }
    case 6: {
      os << "[";
      const auto& m = std::get<Map>(v_);
      for (size_t i = 0; i < m.size(); ++i) {
        if (i > 0) os << ", ";
        os << m[i].first.to_string() << " |-> " << m[i].second.to_string();
      }
      os << "]";
      break;
    }
  }
  return os.str();
}

}  // namespace praft::spec
