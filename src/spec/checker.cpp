#include "spec/checker.h"

#include <deque>
#include <sstream>
#include <unordered_map>

namespace praft::spec {

namespace {

/// Dedup table: canonical state -> node id; parents enable traces.
struct Node {
  State state;
  int64_t parent;
  std::string via;
  size_t depth;
};

struct StateKey {
  size_t hash;
  const State* state;
};

}  // namespace

std::string CheckResult::summary() const {
  std::ostringstream os;
  os << (ok ? "OK" : ("VIOLATION of " + failure)) << ": " << states
     << " states, " << transitions << " transitions, depth " << depth
     << (complete ? " (complete)" : " (bounded)");
  return os.str();
}

CheckResult ModelChecker::check(const Spec& spec, const CheckOptions& opt) {
  CheckResult res;
  std::vector<Node> nodes;
  std::unordered_map<size_t, std::vector<int64_t>> seen;  // hash -> node ids
  std::deque<int64_t> frontier;

  auto lookup_or_insert = [&](State s, int64_t parent,
                              std::string via, size_t depth) -> int64_t {
    const size_t h = hash_state(s);
    auto& bucket = seen[h];
    for (int64_t id : bucket) {
      if (nodes[static_cast<size_t>(id)].state == s) return -1;  // known
    }
    const auto id = static_cast<int64_t>(nodes.size());
    nodes.push_back(Node{std::move(s), parent, std::move(via), depth});
    bucket.push_back(id);
    frontier.push_back(id);
    return id;
  };

  auto build_trace = [&](int64_t id) {
    std::vector<std::string> trace;
    while (id >= 0) {
      const Node& n = nodes[static_cast<size_t>(id)];
      if (!n.via.empty()) trace.push_back(n.via);
      id = n.parent;
    }
    std::reverse(trace.begin(), trace.end());
    return trace;
  };

  auto violated = [&](const State& s) -> const Invariant* {
    for (const Invariant& inv : spec.invariants()) {
      if (!inv.holds(spec, s)) return &inv;
    }
    return nullptr;
  };

  for (const State& s0 : spec.init()) {
    const int64_t id = lookup_or_insert(s0, -1, "", 0);
    if (id >= 0) {
      if (const Invariant* inv = violated(s0)) {
        res.ok = false;
        res.failure = inv->name;
        res.trace = build_trace(id);
        res.states = nodes.size();
        return res;
      }
    }
  }

  while (!frontier.empty()) {
    if (nodes.size() >= opt.max_states) {
      res.states = nodes.size();
      res.complete = false;
      return res;  // budget exhausted, no violation found so far
    }
    const int64_t id = frontier.front();
    frontier.pop_front();
    const size_t depth = nodes[static_cast<size_t>(id)].depth;
    res.depth = std::max(res.depth, depth);
    if (depth >= opt.max_depth) continue;
    // NOTE: take a copy — `nodes` reallocates as successors are inserted.
    const State state = nodes[static_cast<size_t>(id)].state;
    for (auto& [ai, next] : spec.successors(state)) {
      ++res.transitions;
      const int64_t nid =
          lookup_or_insert(std::move(next), id, ai.to_string(), depth + 1);
      if (nid >= 0) {
        const Node& n = nodes[static_cast<size_t>(nid)];
        if (const Invariant* inv = violated(n.state)) {
          res.ok = false;
          res.failure = inv->name;
          res.trace = build_trace(nid);
          res.states = nodes.size();
          return res;
        }
      }
    }
  }
  res.states = nodes.size();
  res.complete = true;
  return res;
}

}  // namespace praft::spec
