#pragma once

#include <functional>
#include <string>

#include "spec/checker.h"
#include "spec/spec.h"

namespace praft::spec {

/// Maps a low-level (B) state onto a high-level (A) state — the `f` with
/// `Var_A = f(Var_B)` of §4.1. Also exposes per-variable reads so ported
/// optimization clauses can evaluate A-variable names against B states.
struct RefinementMapping {
  const Spec* from = nullptr;  // B
  const Spec* to = nullptr;    // A
  std::function<State(const Spec& b_spec, const State& b_state)> map_state;

  [[nodiscard]] State map(const State& b_state) const {
    return map_state(*from, b_state);
  }
};

struct RefinementResult {
  bool ok = true;
  bool complete = false;
  size_t states = 0;       // reachable B states examined
  size_t transitions = 0;  // B transitions checked
  size_t stutters = 0;     // B steps that map to A stutters
  std::string failure;     // description of the offending B step
  [[nodiscard]] std::string summary() const;
};

struct RefinementOptions {
  size_t max_states = 100'000;
  /// One B step may imply a SEQUENCE of A steps (the paper's Appendix C maps
  /// one AppendEntries to several Phase2a/2b steps); the checker searches
  /// A-paths up to this length.
  size_t max_a_steps = 4;
};

/// Checks B => A under `f`: for every reachable B transition b -> b',
/// f(b') must be reachable from f(b) by 0 (stutter) to max_a_steps A steps.
class RefinementChecker {
 public:
  static RefinementResult check(const Spec& b, const Spec& a,
                                const RefinementMapping& f,
                                const RefinementOptions& opt = {});
};

}  // namespace praft::spec
