#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "spec/value.h"

namespace praft::spec {

/// A protocol state: one Value per declared variable, positionally.
using State = std::vector<Value>;

/// Finite parameter domain for one subaction argument.
using Domain = std::vector<Value>;

size_t hash_state(const State& s);

/// A named, identified subaction instance (for traces).
struct ActionInstance {
  std::string action;
  std::vector<Value> params;
  [[nodiscard]] std::string to_string() const;
};

class Spec;

/// Read access to a state's variables by name (used by optimization clauses
/// so they are written against VARIABLE NAMES, never positions — the porting
/// transformation re-binds the names through the refinement mapping).
class VarReader {
 public:
  VarReader(const Spec* spec, const State* state)
      : spec_(spec), state_(state) {}
  [[nodiscard]] const Value& operator[](const std::string& name) const;

 private:
  const Spec* spec_;
  const State* state_;
};

/// One TLA+ subaction: a guarded partial transition function over finite
/// parameter domains. `step` returns nullopt when the guard fails.
struct Action {
  std::string name;
  std::vector<Domain> domains;
  std::function<std::optional<State>(const Spec&, const State&,
                                     const std::vector<Value>&)>
      step;
};

/// A named invariant over states.
struct Invariant {
  std::string name;
  std::function<bool(const Spec&, const State&)> holds;
};

/// A protocol specification: variables, initial states, subactions and
/// invariants — the executable analogue of a TLA+ module (paper §4.1).
class Spec {
 public:
  Spec() = default;
  explicit Spec(std::string name) : name_(std::move(name)) {}

  int declare_var(const std::string& name);
  [[nodiscard]] int var_index(const std::string& name) const;
  [[nodiscard]] bool has_var(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& vars() const { return vars_; }

  void add_init(State s) { init_.push_back(std::move(s)); }
  void add_action(Action a) { actions_.push_back(std::move(a)); }
  void add_invariant(Invariant i) { invariants_.push_back(std::move(i)); }

  [[nodiscard]] const std::vector<State>& init() const { return init_; }
  [[nodiscard]] const std::vector<Action>& actions() const { return actions_; }
  [[nodiscard]] const Action* action(const std::string& name) const;
  [[nodiscard]] const std::vector<Invariant>& invariants() const {
    return invariants_;
  }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Variable accessors by name (checked).
  [[nodiscard]] const Value& get(const State& s, const std::string& var) const;
  void set(State& s, const std::string& var, Value v) const;

  /// All (action instance, next state) pairs enabled in `s`.
  [[nodiscard]] std::vector<std::pair<ActionInstance, State>> successors(
      const State& s) const;

  /// Enumerates the Cartesian product of an action's parameter domains.
  static void for_each_params(
      const std::vector<Domain>& domains,
      const std::function<void(const std::vector<Value>&)>& fn);

 private:
  std::string name_;
  std::vector<std::string> vars_;
  std::vector<State> init_;
  std::vector<Action> actions_;
  std::vector<Invariant> invariants_;
};

}  // namespace praft::spec
