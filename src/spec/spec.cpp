#include "spec/spec.h"

#include <sstream>

#include "common/check.h"

namespace praft::spec {

size_t hash_state(const State& s) {
  size_t h = 0x9e3779b97f4a7c15ull;
  for (const Value& v : s) {
    h ^= v.hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

std::string ActionInstance::to_string() const {
  std::ostringstream os;
  os << action << "(";
  for (size_t i = 0; i < params.size(); ++i) {
    if (i > 0) os << ", ";
    os << params[i].to_string();
  }
  os << ")";
  return os.str();
}

const Value& VarReader::operator[](const std::string& name) const {
  return spec_->get(*state_, name);
}

int Spec::declare_var(const std::string& name) {
  PRAFT_CHECK_MSG(!has_var(name), "duplicate variable: " + name);
  vars_.push_back(name);
  return static_cast<int>(vars_.size()) - 1;
}

int Spec::var_index(const std::string& name) const {
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i] == name) return static_cast<int>(i);
  }
  PRAFT_CHECK_MSG(false, "unknown variable: " + name);
  return -1;
}

bool Spec::has_var(const std::string& name) const {
  for (const auto& v : vars_) {
    if (v == name) return true;
  }
  return false;
}

const Action* Spec::action(const std::string& name) const {
  for (const auto& a : actions_) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

const Value& Spec::get(const State& s, const std::string& var) const {
  const auto idx = static_cast<size_t>(var_index(var));
  PRAFT_CHECK(idx < s.size());
  return s[idx];
}

void Spec::set(State& s, const std::string& var, Value v) const {
  const auto idx = static_cast<size_t>(var_index(var));
  PRAFT_CHECK(idx < s.size());
  s[idx] = std::move(v);
}

void Spec::for_each_params(
    const std::vector<Domain>& domains,
    const std::function<void(const std::vector<Value>&)>& fn) {
  std::vector<Value> params(domains.size());
  std::function<void(size_t)> rec = [&](size_t d) {
    if (d == domains.size()) {
      fn(params);
      return;
    }
    for (const Value& v : domains[d]) {
      params[d] = v;
      rec(d + 1);
    }
  };
  rec(0);
}

std::vector<std::pair<ActionInstance, State>> Spec::successors(
    const State& s) const {
  std::vector<std::pair<ActionInstance, State>> out;
  for (const Action& a : actions_) {
    for_each_params(a.domains, [&](const std::vector<Value>& params) {
      std::optional<State> next = a.step(*this, s, params);
      if (next.has_value()) {
        out.emplace_back(ActionInstance{a.name, params}, std::move(*next));
      }
    });
  }
  return out;
}

}  // namespace praft::spec
