#pragma once

#include <memory>

#include "spec/checker.h"
#include "spec/spec.h"

namespace praft::specs {

/// Bounded-scope parameters (TLC-style) shared by the MultiPaxos and Raft*
/// specs. Ballot b is owned by acceptor (b mod n) — the standard
/// proposer-unique ballot construction, which Appendix B leaves implicit but
/// the OneValuePerBallot invariant requires.
struct ConsensusScope {
  int acceptors = 2;
  int ballots = 2;   // ballots 1..ballots (0 = initial, never proposed)
  int indexes = 1;   // instances 0..indexes-1
  spec::Domain values;  // candidate values; defaults to {1}

  [[nodiscard]] int majority() const { return acceptors / 2 + 1; }
  [[nodiscard]] int ballot_owner(int64_t b) const {
    return static_cast<int>(b) % acceptors;
  }
};

/// MultiPaxos per Appendix B.1: batched phase 1 (BecomeLeader collects
/// accepted values from a quorum of 1b messages and adopts the
/// highest-ballot entry per instance), phase 2 per instance, out-of-order
/// choice. Variable names follow the TLA+ module.
///
/// Invariants: Agreement (one value chosen per instance) and
/// OneValuePerBallot (B.1's key safety lemmas).
std::unique_ptr<spec::Spec> make_multipaxos_spec(const ConsensusScope& scope);

/// Shared helpers for both specs (entry = <<bal, val>>).
namespace detail {
spec::Value empty_entry();
spec::Value highest_ballot_entry(const std::vector<spec::Value>& logs,
                                 size_t index);
bool chosen_at(const spec::Spec& sp, const spec::State& s,
               const ConsensusScope& scope, int index, int64_t bal,
               const spec::Value& val);
}  // namespace detail

}  // namespace praft::specs
