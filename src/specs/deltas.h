#pragma once

#include "core/port.h"
#include "specs/multipaxos_spec.h"

namespace praft::specs {

/// Paxos Quorum Lease as a non-mutating optimization delta on MultiPaxos
/// (Appendix B.3). New variables: applyIndex, timer, leases. Added
/// subactions: GrantLease, UpdateTimer, Apply, ReadAtLocal. Modified:
/// Propose gains the "reads, or no active lease" guard. Values must be typed
/// tuples <<type, id>> with type "r" or "w" (use pql_values()).
///
/// Porting this delta through the Raft* bundle yields the B.4 RQL spec.
core::OptimizationDelta make_pql_delta(const ConsensusScope& scope);

/// Value domain for PQL scopes: one read and one write op.
spec::Domain pql_values();

/// Mencius (coordinated Paxos) as a non-mutating delta on MultiPaxos
/// (Appendix B.5). Instance i's default leader is acceptor (i mod n). New
/// variables: skipTags, executable, skip1b (skip tags piggybacked on 1b
/// messages), propDefaults (isDefault flags piggybacked on proposals).
/// Modified: Propose (coordination restriction + default flag), Accept
/// (skip tags + executable set), Phase1b / BecomeLeader (skip-tag transfer).
///
/// Porting this delta through the Raft* bundle yields the B.6 CoorRaft spec.
core::OptimizationDelta make_mencius_delta(const ConsensusScope& scope);

/// Value domain for Mencius scopes: one real value and the no-op.
spec::Domain mencius_values();
spec::Value mencius_noop();

/// The paper's §2.2 motivating example: checkpointing. The optimization
/// records the last checkpointed instance id — a variable that only READS
/// Paxos state (is the instance chosen?). Ported to Raft*, "instance id"
/// becomes "log index" purely through the refinement mapping, "without
/// considering the precise semantics" (§2.2).
core::OptimizationDelta make_checkpoint_delta(const ConsensusScope& scope);

}  // namespace praft::specs
