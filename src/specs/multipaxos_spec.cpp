#include "specs/multipaxos_spec.h"

#include <algorithm>

#include "common/check.h"

namespace praft::specs {

using spec::Action;
using spec::Domain;
using spec::Invariant;
using spec::Spec;
using spec::State;
using spec::V;
using spec::Value;
using spec::VT;

namespace detail {

Value empty_entry() { return VT(V(-1), Value::none()); }

Value highest_ballot_entry(const std::vector<Value>& logs, size_t index) {
  Value best = empty_entry();
  for (const Value& log : logs) {
    const Value& e = log.at(index);
    if (e.at(0).as_int() > best.at(0).as_int()) best = e;
  }
  return best;
}

bool chosen_at(const Spec& sp, const State& s, const ConsensusScope& scope,
               int index, int64_t bal, const Value& val) {
  const Value vote = VT(V(bal), val);
  int count = 0;
  const Value& votes = sp.get(s, "votes");
  for (int a = 0; a < scope.acceptors; ++a) {
    const Value& va = votes.at(static_cast<size_t>(a))
                          .at(static_cast<size_t>(index));
    if (va.contains(vote)) ++count;
  }
  return count >= scope.majority();
}

}  // namespace detail

namespace {

Domain acceptor_domain(const ConsensusScope& sc) {
  Domain d;
  for (int a = 0; a < sc.acceptors; ++a) d.push_back(V(a));
  return d;
}
Domain ballot_domain(const ConsensusScope& sc) {
  Domain d;
  for (int b = 1; b <= sc.ballots; ++b) d.push_back(V(b));
  return d;
}
Domain index_domain(const ConsensusScope& sc) {
  Domain d;
  for (int i = 0; i < sc.indexes; ++i) d.push_back(V(i));
  return d;
}
Domain mask_domain(const ConsensusScope& sc) {
  Domain d;  // non-empty subsets of acceptors, as bitmasks
  for (int m = 1; m < (1 << sc.acceptors); ++m) d.push_back(V(m));
  return d;
}

Value per_acceptor(const ConsensusScope& sc, const Value& cell) {
  Value::Tuple t(static_cast<size_t>(sc.acceptors), cell);
  return Value::tuple(std::move(t));
}
Value per_index(const ConsensusScope& sc, const Value& cell) {
  Value::Tuple t(static_cast<size_t>(sc.indexes), cell);
  return Value::tuple(std::move(t));
}

}  // namespace

std::unique_ptr<Spec> make_multipaxos_spec(const ConsensusScope& scope) {
  auto spec_ptr = std::make_unique<Spec>("MultiPaxos");
  Spec& sp = *spec_ptr;
  ConsensusScope sc = scope;
  if (sc.values.empty()) sc.values = {V(1)};

  sp.declare_var("highestBallot");  // tuple[acceptor] int
  sp.declare_var("isLeader");       // tuple[acceptor] bool
  sp.declare_var("logTail");        // tuple[acceptor] int
  sp.declare_var("votes");          // tuple[acceptor][index] set<<<bal,val>>>
  sp.declare_var("logs");           // tuple[acceptor][index] <<bal,val>>
  sp.declare_var("proposedValues"); // set <<i, b, v>>
  sp.declare_var("msgs1a");         // set <<acc, bal>>
  sp.declare_var("msgs1b");         // set <<acc, bal, log, logTail>>

  {
    State init;
    init.push_back(per_acceptor(sc, V(0)));
    init.push_back(per_acceptor(sc, V(false)));
    init.push_back(per_acceptor(sc, V(-1)));
    init.push_back(per_acceptor(sc, per_index(sc, Value::set({}))));
    init.push_back(per_acceptor(sc, per_index(sc, detail::empty_entry())));
    init.push_back(Value::set({}));
    init.push_back(Value::set({}));
    init.push_back(Value::set({}));
    sp.add_init(std::move(init));
  }

  const Domain accs = acceptor_domain(sc);
  const Domain bals = ballot_domain(sc);
  const Domain idxs = index_domain(sc);
  const Domain masks = mask_domain(sc);
  const Domain vals = sc.values;

  // IncreaseHighestBallot(a, b): a learns of (promises) a higher ballot.
  sp.add_action(Action{
      "IncreaseHighestBallot",
      {accs, bals},
      [](const Spec& s_, const State& s, const std::vector<Value>& p)
          -> std::optional<State> {
        const auto a = static_cast<size_t>(p[0].as_int());
        if (s_.get(s, "highestBallot").at(a).as_int() >= p[1].as_int()) {
          return std::nullopt;
        }
        State n = s;
        s_.set(n, "highestBallot",
               s_.get(s, "highestBallot").with_at(a, p[1]));
        s_.set(n, "isLeader", s_.get(s, "isLeader").with_at(a, V(false)));
        return n;
      }});

  // Phase1a(a): broadcast prepare at the currently-promised (owned) ballot.
  sp.add_action(Action{
      "Phase1a",
      {accs},
      [sc](const Spec& s_, const State& s, const std::vector<Value>& p)
          -> std::optional<State> {
        const auto a = static_cast<size_t>(p[0].as_int());
        if (s_.get(s, "isLeader").at(a).as_bool()) return std::nullopt;
        const int64_t b = s_.get(s, "highestBallot").at(a).as_int();
        if (b < 1 || sc.ballot_owner(b) != static_cast<int>(a)) {
          return std::nullopt;  // proposer-unique ballots
        }
        State n = s;
        s_.set(n, "msgs1a", s_.get(s, "msgs1a").with_added(VT(p[0], V(b))));
        return n;
      }});

  // Phase1b(a, sender, bal): promise and report accepted values.
  sp.add_action(Action{
      "Phase1b",
      {accs, accs, bals},
      [](const Spec& s_, const State& s, const std::vector<Value>& p)
          -> std::optional<State> {
        const auto a = static_cast<size_t>(p[0].as_int());
        if (!s_.get(s, "msgs1a").contains(VT(p[1], p[2]))) return std::nullopt;
        if (p[2].as_int() <= s_.get(s, "highestBallot").at(a).as_int()) {
          return std::nullopt;
        }
        State n = s;
        s_.set(n, "highestBallot", s_.get(s, "highestBallot").with_at(a, p[2]));
        s_.set(n, "isLeader", s_.get(s, "isLeader").with_at(a, V(false)));
        s_.set(n, "msgs1b",
               s_.get(s, "msgs1b")
                   .with_added(VT(p[0], p[2], s_.get(s, "logs").at(a),
                                  s_.get(s, "logTail").at(a))));
        return n;
      }});

  // BecomeLeader(a, mask): with 1b messages at hb[a] from `mask` (plus the
  // candidate's own log — its implicit self-promise), adopt the safe
  // (highest-ballot) value per instance and lead.
  sp.add_action(Action{
      "BecomeLeader",
      {accs, masks},
      [sc](const Spec& s_, const State& s, const std::vector<Value>& p)
          -> std::optional<State> {
        const auto a = static_cast<size_t>(p[0].as_int());
        const int mask = static_cast<int>(p[1].as_int());
        if (s_.get(s, "isLeader").at(a).as_bool()) return std::nullopt;
        const int64_t b = s_.get(s, "highestBallot").at(a).as_int();
        if (b < 1 || sc.ballot_owner(b) != static_cast<int>(a)) {
          return std::nullopt;
        }
        // Gather the quorum: candidate + responders in mask.
        int quorum = 1;
        std::vector<Value> logs_in = {s_.get(s, "logs").at(a)};
        int64_t max_tail = s_.get(s, "logTail").at(a).as_int();
        for (int x = 0; x < sc.acceptors; ++x) {
          if (x == static_cast<int>(a) || (mask & (1 << x)) == 0) continue;
          // Find x's 1b message at ballot b (unique per (acc, ballot)).
          const Value* found = nullptr;
          for (const Value& m : s_.get(s, "msgs1b").as_set()) {
            if (m.at(0).as_int() == x && m.at(1).as_int() == b) found = &m;
          }
          if (found == nullptr) return std::nullopt;
          logs_in.push_back(found->at(2));
          max_tail = std::max(max_tail, found->at(3).as_int());
          ++quorum;
        }
        if (quorum < sc.majority()) return std::nullopt;
        State n = s;
        Value mylog = s_.get(s, "logs").at(a);
        for (int i = 0; i < sc.indexes; ++i) {
          if (static_cast<int64_t>(i) > max_tail) break;
          mylog = mylog.with_at(
              static_cast<size_t>(i),
              detail::highest_ballot_entry(logs_in, static_cast<size_t>(i)));
        }
        s_.set(n, "logs", s_.get(s, "logs").with_at(a, mylog));
        if (max_tail > s_.get(s, "logTail").at(a).as_int()) {
          s_.set(n, "logTail", s_.get(s, "logTail").with_at(a, V(max_tail)));
        }
        s_.set(n, "isLeader", s_.get(s, "isLeader").with_at(a, V(true)));
        return n;
      }});

  // Propose(a, i, v) — Phase2a: the leader proposes v for instance i.
  sp.add_action(Action{
      "Propose",
      {accs, idxs, vals},
      [](const Spec& s_, const State& s, const std::vector<Value>& p)
          -> std::optional<State> {
        const auto a = static_cast<size_t>(p[0].as_int());
        const auto i = static_cast<size_t>(p[1].as_int());
        if (!s_.get(s, "isLeader").at(a).as_bool()) return std::nullopt;
        const Value& cur = s_.get(s, "logs").at(a).at(i).at(1);
        if (!cur.is_none() && !(cur == p[2])) return std::nullopt;
        const int64_t b = s_.get(s, "highestBallot").at(a).as_int();
        // One value per (instance, ballot): the log alone is a stale guard
        // (the leader's own accept is a separate step), so also check what
        // this ballot already proposed.
        for (const Value& pv : s_.get(s, "proposedValues").as_set()) {
          if (pv.at(0) == p[1] && pv.at(1).as_int() == b &&
              !(pv.at(2) == p[2])) {
            return std::nullopt;
          }
        }
        State n = s;
        s_.set(n, "proposedValues",
               s_.get(s, "proposedValues").with_added(VT(p[1], V(b), p[2])));
        return n;
      }});

  // Accept(a, i, b, v) — Phase2b: accept a proposed value.
  sp.add_action(Action{
      "Accept",
      {accs, idxs, bals, vals},
      [](const Spec& s_, const State& s, const std::vector<Value>& p)
          -> std::optional<State> {
        const auto a = static_cast<size_t>(p[0].as_int());
        const auto i = static_cast<size_t>(p[1].as_int());
        if (!s_.get(s, "proposedValues").contains(VT(p[1], p[2], p[3]))) {
          return std::nullopt;
        }
        const int64_t hb = s_.get(s, "highestBallot").at(a).as_int();
        if (p[2].as_int() < hb) return std::nullopt;
        State n = s;
        s_.set(n, "highestBallot", s_.get(s, "highestBallot").with_at(a, p[2]));
        if (p[2].as_int() > hb) {
          s_.set(n, "isLeader", s_.get(s, "isLeader").with_at(a, V(false)));
        }
        const Value vote = VT(p[2], p[3]);
        Value votes_a = s_.get(s, "votes").at(a);
        votes_a = votes_a.with_at(i, votes_a.at(i).with_added(vote));
        s_.set(n, "votes", s_.get(s, "votes").with_at(a, votes_a));
        s_.set(n, "logs",
               s_.get(s, "logs").with_at(
                   a, s_.get(s, "logs").at(a).with_at(i, vote)));
        if (p[1].as_int() > s_.get(s, "logTail").at(a).as_int()) {
          s_.set(n, "logTail", s_.get(s, "logTail").with_at(a, p[1]));
        }
        return n;
      }});

  // --- Invariants ----------------------------------------------------------
  sp.add_invariant(Invariant{
      "Agreement",
      [sc](const Spec& s_, const State& s) {
        for (int i = 0; i < sc.indexes; ++i) {
          Value chosen = Value::none();
          for (int b = 1; b <= sc.ballots; ++b) {
            for (const Value& v : sc.values) {
              if (detail::chosen_at(s_, s, sc, i, b, v)) {
                if (!chosen.is_none() && !(chosen == v)) return false;
                chosen = v;
              }
            }
          }
        }
        return true;
      }});
  sp.add_invariant(Invariant{
      "OneValuePerBallot",
      [sc](const Spec& s_, const State& s) {
        // No two acceptors vote different values at the same (index, ballot).
        const Value& votes = s_.get(s, "votes");
        for (int i = 0; i < sc.indexes; ++i) {
          for (int b = 1; b <= sc.ballots; ++b) {
            Value seen = Value::none();
            for (int a = 0; a < sc.acceptors; ++a) {
              for (const Value& vote : votes.at(static_cast<size_t>(a))
                                           .at(static_cast<size_t>(i))
                                           .as_set()) {
                if (vote.at(0).as_int() != b) continue;
                if (!seen.is_none() && !(seen == vote.at(1))) return false;
                seen = vote.at(1);
              }
            }
          }
        }
        return true;
      }});

  return spec_ptr;
}

}  // namespace praft::specs
