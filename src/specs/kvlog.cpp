#include "specs/kvlog.h"

namespace praft::specs {

using core::AddedAction;
using core::DeltaUpdates;
using core::ModifiedAction;
using spec::Action;
using spec::Domain;
using spec::Invariant;
using spec::Spec;
using spec::State;
using spec::V;
using spec::Value;

std::unique_ptr<KvLogBundle> make_kvlog(int num_keys, int num_values) {
  auto bundle = std::make_unique<KvLogBundle>();

  Domain keys, values;
  for (int k = 0; k < num_keys; ++k) keys.push_back(V(k));
  for (int v = 1; v <= num_values; ++v) values.push_back(V(v));

  Value empty_row;
  {
    Value::Tuple t(static_cast<size_t>(num_keys), Value::none());
    empty_row = Value::tuple(std::move(t));
  }

  // --- A: the key-value store (Fig. 4a) -----------------------------------
  Spec& a = bundle->a;
  a = Spec("KvStore");
  a.declare_var("table");
  a.declare_var("output");
  a.add_init(State{empty_row, Value::none()});
  a.add_action(Action{
      "Put",
      {keys, values},
      [](const Spec& sp, const State& s, const std::vector<Value>& p)
          -> std::optional<State> {
        State n = s;
        sp.set(n, "table",
               sp.get(s, "table").with_at(static_cast<size_t>(p[0].as_int()),
                                          p[1]));
        return n;
      }});
  a.add_action(Action{
      "Get",
      {keys},
      [](const Spec& sp, const State& s, const std::vector<Value>& p)
          -> std::optional<State> {
        State n = s;
        sp.set(n, "output",
               sp.get(s, "table").at(static_cast<size_t>(p[0].as_int())));
        return n;
      }});

  // --- B: the log (Fig. 4b) ------------------------------------------------
  Spec& b = bundle->b;
  b = Spec("Log");
  b.declare_var("logs");
  b.declare_var("output");
  b.add_init(State{empty_row, Value::none()});
  b.add_action(Action{
      "Write",
      {keys, values},
      [](const Spec& sp, const State& s, const std::vector<Value>& p)
          -> std::optional<State> {
        const auto i = static_cast<size_t>(p[0].as_int());
        const Value& logs = sp.get(s, "logs");
        // Contiguity: i = 0 or logs[i-1] already bound (Fig. 4b line 2).
        if (i > 0 && logs.at(i - 1).is_none()) return std::nullopt;
        State n = s;
        sp.set(n, "logs", logs.with_at(i, p[1]));
        return n;
      }});
  b.add_action(Action{
      "Read",
      {keys},
      [](const Spec& sp, const State& s, const std::vector<Value>& p)
          -> std::optional<State> {
        State n = s;
        sp.set(n, "output",
               sp.get(s, "logs").at(static_cast<size_t>(p[0].as_int())));
        return n;
      }});

  // --- f: B => A (the i-th log entry is the table entry with key i) -------
  bundle->f.from = &bundle->b;
  bundle->f.to = &bundle->a;
  bundle->f.map_state = [](const Spec& bs, const State& s) {
    return State{bs.get(s, "logs"), bs.get(s, "output")};
  };

  // --- Fig. 3-style correspondence ----------------------------------------
  bundle->corr.entries.push_back({"Write", "Put", nullptr});
  bundle->corr.entries.push_back({"Read", "Get", nullptr});

  // --- Δ: the size counter (Fig. 4c) ---------------------------------------
  core::OptimizationDelta& d = bundle->delta;
  d.name = "size";
  d.new_vars.emplace_back("size", V(0));
  ModifiedAction put_mod;
  put_mod.base = "Put";
  put_mod.clause.apply = [](const core::VarFn& a_pre, const core::VarFn&,
                            const core::VarFn& d_pre,
                            const std::vector<Value>& p)
      -> std::optional<DeltaUpdates> {
    // Extra guard (Fig. 4c line 2): the key must be unbound. Reads A-vars
    // only; never writes them.
    const Value cell = a_pre("table").at(static_cast<size_t>(p[0].as_int()));
    if (!cell.is_none()) return std::nullopt;
    DeltaUpdates u;
    u["size"] = V(d_pre("size").as_int() + 1);
    return u;
  };
  d.modified.push_back(std::move(put_mod));
  d.new_invariants.push_back(Invariant{
      "SizeCountsBoundKeys",
      [](const Spec& sp, const State& s) {
        int64_t bound = 0;
        for (const Value& cell : sp.get(s, "table").as_tuple()) {
          bound += cell.is_none() ? 0 : 1;
        }
        return sp.get(s, "size").as_int() == bound;
      }});

  return bundle;
}

}  // namespace praft::specs
