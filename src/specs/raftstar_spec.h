#pragma once

#include <memory>

#include "core/port.h"
#include "spec/refinement.h"
#include "specs/multipaxos_spec.h"

namespace praft::specs {

/// The Raft* spec (Appendix B.2), its MultiPaxos counterpart, the refinement
/// mapping between them (Fig. 3) and the action correspondence table the
/// porting method consumes (§4.3).
struct RaftStarBundle {
  ConsensusScope scope;
  std::unique_ptr<spec::Spec> paxos;     // A
  std::unique_ptr<spec::Spec> raftstar;  // B
  spec::RefinementMapping f;             // Raft* => MultiPaxos
  core::Correspondence corr;             // Fig. 3 function table
};

/// Builds both specs at `scope`. Fig. 3's variable mapping:
///   currentTerm/highestBallot -> ballot,  isLeader -> phase1Succeeded,
///   entry.val -> instance.val,  entry.bal (logBallot) -> instance.bal,
///   requestVote/requestVoteOK -> prepare/prepareOK,
///   (im/ex) append/appendOK   -> accept/acceptOK.
/// Action table: Phase1a->Phase1a, Phase1b->Phase1b,
/// BecomeLeader->BecomeLeader(+implicit accepts), ProposeEntries->Propose,
/// AcceptEntries->Accept (per covered instance — checked as a multi-step
/// refinement, Appendix C's "stuttering").
std::unique_ptr<RaftStarBundle> make_raftstar_bundle(
    const ConsensusScope& scope);

}  // namespace praft::specs
