#include "specs/deltas.h"

namespace praft::specs {

using core::AddedAction;
using core::DeltaUpdates;
using core::ModifiedAction;
using core::VarFn;
using spec::Domain;
using spec::Invariant;
using spec::Spec;
using spec::State;
using spec::V;
using spec::Value;
using spec::VT;

namespace {

Domain acceptor_domain(const ConsensusScope& sc) {
  Domain d;
  for (int a = 0; a < sc.acceptors; ++a) d.push_back(V(a));
  return d;
}
Domain index_domain(const ConsensusScope& sc) {
  Domain d;
  for (int i = 0; i < sc.indexes; ++i) d.push_back(V(i));
  return d;
}
Value per_acceptor(const ConsensusScope& sc, const Value& cell) {
  Value::Tuple t(static_cast<size_t>(sc.acceptors), cell);
  return Value::tuple(std::move(t));
}
Value per_index(const ConsensusScope& sc, const Value& cell) {
  Value::Tuple t(static_cast<size_t>(sc.indexes), cell);
  return Value::tuple(std::move(t));
}

constexpr int kLeaseDuration = 2;
constexpr int kTimerMax = 3;

/// LeaseIsActive(p): a quorum of grantors has leases[a][p] >= timer.
bool lease_active(const ConsensusScope& sc, const Value& leases, int64_t timer,
                  int p) {
  int count = 0;
  for (int a = 0; a < sc.acceptors; ++a) {
    if (leases.at(static_cast<size_t>(a)).at(static_cast<size_t>(p)).as_int() >=
        timer) {
      ++count;
    }
  }
  return count >= sc.majority();
}

bool voted_for(const ConsensusScope& sc, const Value& votes, int a, int i,
               int64_t b, const Value& v) {
  (void)sc;
  return votes.at(static_cast<size_t>(a)).at(static_cast<size_t>(i))
      .contains(VT(V(b), v));
}

/// CanCommitAt (B.3): some quorum voted AND every lease holder granted by a
/// quorum member voted.
bool can_commit_at(const ConsensusScope& sc, const Value& votes,
                   const Value& leases, int64_t timer, int i, int64_t b,
                   const Value& v) {
  for (int mask = 1; mask < (1 << sc.acceptors); ++mask) {
    int size = 0;
    bool all_voted = true;
    for (int a = 0; a < sc.acceptors; ++a) {
      if ((mask & (1 << a)) == 0) continue;
      ++size;
      all_voted = all_voted && voted_for(sc, votes, a, i, b, v);
    }
    if (size < sc.majority() || !all_voted) continue;
    bool holders_ok = true;
    for (int p = 0; p < sc.acceptors; ++p) {
      bool granted_by_quorum = false;
      for (int a = 0; a < sc.acceptors; ++a) {
        if ((mask & (1 << a)) == 0) continue;
        if (leases.at(static_cast<size_t>(a)).at(static_cast<size_t>(p))
                .as_int() >= timer) {
          granted_by_quorum = true;
        }
      }
      if (granted_by_quorum && !voted_for(sc, votes, p, i, b, v)) {
        holders_ok = false;
      }
    }
    if (holders_ok) return true;
  }
  return false;
}

}  // namespace

Domain pql_values() { return {VT(V("r"), V(1)), VT(V("w"), V(1))}; }

core::OptimizationDelta make_pql_delta(const ConsensusScope& scope) {
  ConsensusScope sc = scope;
  if (sc.values.empty()) sc.values = pql_values();
  core::OptimizationDelta d;
  d.name = "PQL";
  d.new_vars.emplace_back("applyIndex", per_acceptor(sc, V(-1)));
  d.new_vars.emplace_back("timer", V(0));
  d.new_vars.emplace_back("leases",
                          per_acceptor(sc, per_acceptor(sc, V(-1))));

  const Domain accs = acceptor_domain(sc);
  const Domain idxs = index_domain(sc);

  // GrantLease(p, q): p grants q a lease until timer + duration.
  d.added.push_back(AddedAction{
      "GrantLease",
      {accs, accs},
      [sc](const VarFn&, const VarFn& dv,
           const std::vector<Value>& p) -> std::optional<DeltaUpdates> {
        const auto grantor = static_cast<size_t>(p[0].as_int());
        const auto holder = static_cast<size_t>(p[1].as_int());
        const int64_t expiry = dv("timer").as_int() + kLeaseDuration;
        Value leases = dv("leases");
        leases = leases.with_at(
            grantor, leases.at(grantor).with_at(holder, V(expiry)));
        DeltaUpdates u;
        u["leases"] = leases;
        return u;
      }});

  // UpdateTimer: the global timer ticks (bounded for model checking).
  d.added.push_back(AddedAction{
      "UpdateTimer",
      {},
      [](const VarFn&, const VarFn& dv,
         const std::vector<Value>&) -> std::optional<DeltaUpdates> {
        if (dv("timer").as_int() >= kTimerMax) return std::nullopt;
        DeltaUpdates u;
        u["timer"] = V(dv("timer").as_int() + 1);
        return u;
      }});

  // Apply(a, i): execute instance i once it commits under the lease rule.
  d.added.push_back(AddedAction{
      "Apply",
      {accs, idxs},
      [sc](const VarFn& av, const VarFn& dv,
           const std::vector<Value>& p) -> std::optional<DeltaUpdates> {
        const auto a = static_cast<size_t>(p[0].as_int());
        const int i = static_cast<int>(p[1].as_int());
        if (dv("applyIndex").at(a).as_int() + 1 != i) return std::nullopt;
        const Value entry = av("logs").at(a).at(static_cast<size_t>(i));
        if (entry.at(1).is_none()) return std::nullopt;
        if (!can_commit_at(sc, av("votes"), dv("leases"), dv("timer").as_int(),
                           i, entry.at(0).as_int(), entry.at(1))) {
          return std::nullopt;
        }
        DeltaUpdates u;
        u["applyIndex"] = dv("applyIndex").with_at(a, p[1]);
        return u;
      }});

  // ReadAtLocal(a): lease-holding replica serves a read locally. A pure
  // guard (no state change): TLA+'s UNCHANGED vars.
  d.added.push_back(AddedAction{
      "ReadAtLocal",
      {accs},
      [sc](const VarFn& av, const VarFn& dv,
           const std::vector<Value>& p) -> std::optional<DeltaUpdates> {
        const auto a = static_cast<size_t>(p[0].as_int());
        if (!lease_active(sc, dv("leases"), dv("timer").as_int(),
                          static_cast<int>(a))) {
          return std::nullopt;
        }
        if (!(av("logTail").at(a) == dv("applyIndex").at(a))) {
          return std::nullopt;  // pending writes must finish first
        }
        return DeltaUpdates{};
      }});

  // Modified Propose (B.3 Next): writes are proposable only by replicas
  // without an active lease... reads always (they go through the log too).
  ModifiedAction prop;
  prop.base = "Propose";
  prop.clause.apply = [sc](const VarFn&, const VarFn&, const VarFn& dv,
                           const std::vector<Value>& p)
      -> std::optional<DeltaUpdates> {
    const Value& v = p[2];
    const bool is_read = v.is_tuple() && v.at(0) == V("r");
    const auto a = static_cast<int>(p[0].as_int());
    if (!is_read && lease_active(sc, dv("leases"), dv("timer").as_int(), a)) {
      return std::nullopt;
    }
    return DeltaUpdates{};
  };
  d.modified.push_back(std::move(prop));

  // LeaseInv (B.3): every committable value is chosen and known by every
  // active lease holder — local reads are linearizable.
  d.new_invariants.push_back(Invariant{
      "LeaseInv",
      [sc](const Spec& s_, const State& s) {
        const Value& votes = s_.get(s, "votes");
        const Value& leases = s_.get(s, "leases");
        const int64_t timer = s_.get(s, "timer").as_int();
        for (int i = 0; i < sc.indexes; ++i) {
          for (int b = 1; b <= sc.ballots; ++b) {
            for (const Value& v : sc.values) {
              if (!can_commit_at(sc, votes, leases, timer, i, b, v)) continue;
              if (!detail::chosen_at(s_, s, sc, i, b, v)) return false;
              for (int p = 0; p < sc.acceptors; ++p) {
                if (lease_active(sc, leases, timer, p) &&
                    !voted_for(sc, votes, p, i, b, v)) {
                  return false;
                }
              }
            }
          }
        }
        return true;
      }});
  return d;
}

Value mencius_noop() { return VT(V("n"), V(0)); }
Domain mencius_values() { return {VT(V("w"), V(1)), mencius_noop()}; }

core::OptimizationDelta make_checkpoint_delta(const ConsensusScope& scope) {
  ConsensusScope sc = scope;
  if (sc.values.empty()) sc.values = {V(1)};
  core::OptimizationDelta d;
  d.name = "Checkpoint";
  d.new_vars.emplace_back("checkpoint", per_acceptor(sc, V(-1)));

  Domain accs = acceptor_domain(sc);
  Domain idxs = index_domain(sc);
  d.added.push_back(AddedAction{
      "Checkpoint",
      {accs, idxs},
      [sc](const VarFn& av, const VarFn& dv,
           const std::vector<Value>& p) -> std::optional<DeltaUpdates> {
        const auto a = static_cast<size_t>(p[0].as_int());
        const int i = static_cast<int>(p[1].as_int());
        if (dv("checkpoint").at(a).as_int() + 1 != i) return std::nullopt;
        // Only checkpoint chosen instances (reads votes — never writes).
        bool chosen = false;
        const Value& votes = av("votes");
        for (int b = 1; b <= sc.ballots && !chosen; ++b) {
          for (const Value& v : sc.values) {
            int count = 0;
            for (int x = 0; x < sc.acceptors; ++x) {
              if (votes.at(static_cast<size_t>(x)).at(static_cast<size_t>(i))
                      .contains(VT(V(b), v))) {
                ++count;
              }
            }
            if (count >= sc.majority()) {
              chosen = true;
              break;
            }
          }
        }
        if (!chosen) return std::nullopt;
        DeltaUpdates u;
        u["checkpoint"] = dv("checkpoint").with_at(a, p[1]);
        return u;
      }});

  d.new_invariants.push_back(Invariant{
      "CheckpointedImpliesChosen",
      [sc](const Spec& s_, const State& s) {
        for (int a = 0; a < sc.acceptors; ++a) {
          const int64_t cp =
              s_.get(s, "checkpoint").at(static_cast<size_t>(a)).as_int();
          for (int64_t i = 0; i <= cp; ++i) {
            bool chosen = false;
            for (int b = 1; b <= sc.ballots && !chosen; ++b) {
              for (const Value& v : sc.values) {
                if (detail::chosen_at(s_, s, sc, static_cast<int>(i), b, v)) {
                  chosen = true;
                  break;
                }
              }
            }
            if (!chosen) return false;
          }
        }
        return true;
      }});
  return d;
}

core::OptimizationDelta make_mencius_delta(const ConsensusScope& scope) {
  ConsensusScope sc = scope;
  if (sc.values.empty()) sc.values = mencius_values();
  core::OptimizationDelta d;
  d.name = "Mencius";
  d.new_vars.emplace_back("skipTags", per_acceptor(sc, per_index(sc, V(false))));
  d.new_vars.emplace_back("executable", per_acceptor(sc, Value::set({})));
  d.new_vars.emplace_back("skip1b", Value::set({}));
  d.new_vars.emplace_back("propDefaults", Value::set({}));

  const auto owner_of = [sc](int64_t i) {
    return static_cast<int>(i) % sc.acceptors;
  };

  // Modified Propose: the coordination restriction (only the default leader
  // proposes real values; everyone else proposes no-op) plus the isDefault
  // flag attached to the proposal (B.5 Propose/Phase1c).
  ModifiedAction prop;
  prop.base = "Propose";
  prop.clause.apply = [owner_of](const VarFn& a_pre, const VarFn&,
                                 const VarFn& dv,
                                 const std::vector<Value>& p)
      -> std::optional<DeltaUpdates> {
    const auto a = static_cast<int>(p[0].as_int());
    const int64_t i = p[1].as_int();
    const Value& v = p[2];
    const bool is_default = owner_of(i) == a;
    const bool is_noop = v == mencius_noop();
    if (!is_default && !is_noop) return std::nullopt;  // coordinated Paxos
    const int64_t b =
        a_pre("highestBallot").at(static_cast<size_t>(a)).as_int();
    DeltaUpdates u;
    u["propDefaults"] =
        dv("propDefaults").with_added(VT(p[1], V(b), v, V(is_default)));
    return u;
  };
  d.modified.push_back(std::move(prop));

  // Modified Accept (B.5 Phase2b): accepting a no-op from the default leader
  // tags the instance skippable and immediately executable.
  ModifiedAction acc;
  acc.base = "Accept";
  acc.clause.apply = [](const VarFn&, const VarFn&, const VarFn& dv,
                        const std::vector<Value>& p)
      -> std::optional<DeltaUpdates> {
    const auto a = static_cast<size_t>(p[0].as_int());
    const Value& i = p[1];
    const Value& b = p[2];
    const Value& v = p[3];
    if (!(v == mencius_noop()) ||
        !dv("propDefaults").contains(VT(i, b, v, V(true)))) {
      return DeltaUpdates{};  // no extra effect; accept proceeds as usual
    }
    DeltaUpdates u;
    Value tags = dv("skipTags");
    tags = tags.with_at(a, tags.at(a).with_at(
                               static_cast<size_t>(i.as_int()), V(true)));
    u["skipTags"] = tags;
    Value ex = dv("executable");
    ex = ex.with_at(a, ex.at(a).with_added(VT(i, v)));
    u["executable"] = ex;
    return u;
  };
  d.modified.push_back(std::move(acc));

  // Modified Phase1b (B.5): promise replies carry the replier's skip tags.
  ModifiedAction p1b;
  p1b.base = "Phase1b";
  p1b.clause.apply = [](const VarFn&, const VarFn&, const VarFn& dv,
                        const std::vector<Value>& p)
      -> std::optional<DeltaUpdates> {
    const auto a = static_cast<size_t>(p[0].as_int());
    DeltaUpdates u;
    u["skip1b"] = dv("skip1b").with_added(VT(p[0], p[2], dv("skipTags").at(a)));
    return u;
  };
  d.modified.push_back(std::move(p1b));

  // Modified BecomeLeader (B.5 Phase1Succeed): adopt skip tags reported by
  // the promise quorum.
  ModifiedAction bl;
  bl.base = "BecomeLeader";
  bl.clause.apply = [sc](const VarFn& a_pre, const VarFn&, const VarFn& dv,
                         const std::vector<Value>& p)
      -> std::optional<DeltaUpdates> {
    const auto a = static_cast<size_t>(p[0].as_int());
    const int64_t b = a_pre("highestBallot").at(a).as_int();
    Value tags = dv("skipTags");
    Value mine = tags.at(a);
    // Bind the VarFn result to a named value: ranging over a reference into
    // the temporary would dangle.
    const Value skip1b = dv("skip1b");
    for (const Value& m : skip1b.as_set()) {
      if (m.at(1).as_int() != b) continue;
      const Value& their = m.at(2);
      for (int i = 0; i < sc.indexes; ++i) {
        if (their.at(static_cast<size_t>(i)).as_bool()) {
          mine = mine.with_at(static_cast<size_t>(i), V(true));
        }
      }
    }
    DeltaUpdates u;
    u["skipTags"] = tags.with_at(a, mine);
    return u;
  };
  d.modified.push_back(std::move(bl));

  // Safety of the skip optimization: a skip-tagged instance can only ever
  // choose the no-op (so executing it early is safe).
  d.new_invariants.push_back(Invariant{
      "NoSkippedValueChosen",
      [sc](const Spec& s_, const State& s) {
        const Value& tags = s_.get(s, "skipTags");
        for (int a = 0; a < sc.acceptors; ++a) {
          for (int i = 0; i < sc.indexes; ++i) {
            if (!tags.at(static_cast<size_t>(a)).at(static_cast<size_t>(i))
                     .as_bool()) {
              continue;
            }
            for (int b = 1; b <= sc.ballots; ++b) {
              for (const Value& v : sc.values) {
                if (v == mencius_noop()) continue;
                if (detail::chosen_at(s_, s, sc, i, b, v)) return false;
              }
            }
          }
        }
        return true;
      }});
  d.new_invariants.push_back(Invariant{
      "ExecutableAreNoops",
      [sc](const Spec& s_, const State& s) {
        for (int a = 0; a < sc.acceptors; ++a) {
          for (const Value& e :
               s_.get(s, "executable").at(static_cast<size_t>(a)).as_set()) {
            if (!(e.at(1) == mencius_noop())) return false;
          }
        }
        return true;
      }});
  return d;
}

}  // namespace praft::specs
