#pragma once

#include <memory>

#include "core/port.h"
#include "spec/refinement.h"
#include "spec/spec.h"

namespace praft::specs {

/// The paper's Fig. 4 teaching example, executable:
///   A  — a key-value store with Put/Get (Fig. 4a);
///   B  — a log that stores values contiguously and refines A under
///        table[k] = logs[k] (Fig. 4b);
///   Δ  — the non-mutating "size counter" optimization on A (Fig. 4c);
/// port(B, f, corr, Δ) then mechanically produces Fig. 4d.
struct KvLogBundle {
  spec::Spec a;
  spec::Spec b;
  spec::RefinementMapping f;       // B => A
  core::Correspondence corr;       // Write -> Put, Read -> Get
  core::OptimizationDelta delta;   // size counter
};

/// Builds the bundle with `num_keys` keys/log positions and integer values
/// 1..num_values. The bundle must outlive any Spec derived from it.
std::unique_ptr<KvLogBundle> make_kvlog(int num_keys = 2, int num_values = 2);

}  // namespace praft::specs
