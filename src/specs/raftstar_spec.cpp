#include "specs/raftstar_spec.h"

#include <algorithm>

namespace praft::specs {

using spec::Action;
using spec::Domain;
using spec::Invariant;
using spec::Spec;
using spec::State;
using spec::V;
using spec::Value;
using spec::VT;

namespace {

Domain acceptor_domain(const ConsensusScope& sc) {
  Domain d;
  for (int a = 0; a < sc.acceptors; ++a) d.push_back(V(a));
  return d;
}
Domain ballot_domain(const ConsensusScope& sc) {
  Domain d;
  for (int b = 1; b <= sc.ballots; ++b) d.push_back(V(b));
  return d;
}
Domain index_domain(const ConsensusScope& sc) {
  Domain d;
  for (int i = 0; i < sc.indexes; ++i) d.push_back(V(i));
  return d;
}
Domain mask_domain(const ConsensusScope& sc) {
  Domain d;
  for (int m = 1; m < (1 << sc.acceptors); ++m) d.push_back(V(m));
  return d;
}
Value per_acceptor(const ConsensusScope& sc, const Value& cell) {
  Value::Tuple t(static_cast<size_t>(sc.acceptors), cell);
  return Value::tuple(std::move(t));
}
Value per_index(const ConsensusScope& sc, const Value& cell) {
  Value::Tuple t(static_cast<size_t>(sc.indexes), cell);
  return Value::tuple(std::move(t));
}

/// logs[a] in Paxos terms: i-th entry = <<logBallot[a][i], raftlogs[a][i].val>>.
Value mapped_log(const Spec& sp, const State& s, size_t a, int indexes) {
  const Value& rl = sp.get(s, "raftlogs").at(a);
  const Value& lb = sp.get(s, "logBallot").at(a);
  Value::Tuple t;
  for (int i = 0; i < indexes; ++i) {
    t.push_back(VT(lb.at(static_cast<size_t>(i)),
                   rl.at(static_cast<size_t>(i)).at(1)));
  }
  return Value::tuple(std::move(t));
}

}  // namespace

std::unique_ptr<RaftStarBundle> make_raftstar_bundle(
    const ConsensusScope& scope) {
  auto bundle = std::make_unique<RaftStarBundle>();
  bundle->scope = scope;
  if (bundle->scope.values.empty()) bundle->scope.values = {V(1)};
  const ConsensusScope sc = bundle->scope;

  bundle->paxos = make_multipaxos_spec(sc);

  bundle->raftstar = std::make_unique<Spec>("RaftStar");
  Spec& sp = *bundle->raftstar;

  sp.declare_var("highestBallot");    // currentTerm, tuple[acceptor] int
  sp.declare_var("isLeader");         // tuple[acceptor] bool
  sp.declare_var("lastIndex");        // tuple[acceptor] int
  sp.declare_var("logTail");          // tuple[acceptor] int
  sp.declare_var("votes");            // as in MultiPaxos (auxiliary)
  sp.declare_var("raftlogs");         // tuple[acceptor][index] <<term, val>>
  sp.declare_var("logBallot");        // tuple[acceptor][index] int
  sp.declare_var("proposedEntries");  // set <<term, lIndex, entries>>
  sp.declare_var("proposedValues");   // set <<i, b, v>> (mirror of Paxos)
  sp.declare_var("r1amsgs");          // set <<acc, bal, lastTerm, lastIndex>>
  sp.declare_var("r1bmsgs");          // set <<acc, bal, log, logTail>>

  {
    State init;
    init.push_back(per_acceptor(sc, V(0)));
    init.push_back(per_acceptor(sc, V(false)));
    init.push_back(per_acceptor(sc, V(-1)));
    init.push_back(per_acceptor(sc, V(-1)));
    init.push_back(per_acceptor(sc, per_index(sc, Value::set({}))));
    init.push_back(per_acceptor(sc, per_index(sc, VT(V(-1), Value::none()))));
    init.push_back(per_acceptor(sc, per_index(sc, V(-1))));
    init.push_back(Value::set({}));
    init.push_back(Value::set({}));
    init.push_back(Value::set({}));
    init.push_back(Value::set({}));
    sp.add_init(std::move(init));
  }

  const Domain accs = acceptor_domain(sc);
  const Domain bals = ballot_domain(sc);
  const Domain idxs = index_domain(sc);
  const Domain masks = mask_domain(sc);
  const Domain vals = sc.values;

  sp.add_action(Action{
      "IncreaseHighestBallot",
      {accs, bals},
      [](const Spec& s_, const State& s, const std::vector<Value>& p)
          -> std::optional<State> {
        const auto a = static_cast<size_t>(p[0].as_int());
        if (s_.get(s, "highestBallot").at(a).as_int() >= p[1].as_int()) {
          return std::nullopt;
        }
        State n = s;
        s_.set(n, "highestBallot",
               s_.get(s, "highestBallot").with_at(a, p[1]));
        s_.set(n, "isLeader", s_.get(s, "isLeader").with_at(a, V(false)));
        return n;
      }});

  // Phase1a — RequestVote: like Paxos' prepare but the message also carries
  // lastTerm/lastIndex for the up-to-date check.
  sp.add_action(Action{
      "Phase1a",
      {accs},
      [sc](const Spec& s_, const State& s, const std::vector<Value>& p)
          -> std::optional<State> {
        const auto a = static_cast<size_t>(p[0].as_int());
        if (s_.get(s, "isLeader").at(a).as_bool()) return std::nullopt;
        const int64_t b = s_.get(s, "highestBallot").at(a).as_int();
        if (b < 1 || sc.ballot_owner(b) != static_cast<int>(a)) {
          return std::nullopt;
        }
        const int64_t li = s_.get(s, "lastIndex").at(a).as_int();
        const int64_t lt =
            li < 0 ? -1
                   : s_.get(s, "raftlogs").at(a).at(static_cast<size_t>(li))
                         .at(0).as_int();
        State n = s;
        s_.set(n, "r1amsgs",
               s_.get(s, "r1amsgs").with_added(VT(p[0], V(b), V(lt), V(li))));
        return n;
      }});

  // Phase1b — ReceiveVote: the Raft* twist is the reply ships the voter's
  // WHOLE log (in Paxos <<bal,val>> form), i.e. including extra entries
  // beyond the candidate's lastIndex (paper §3, difference #1).
  sp.add_action(Action{
      "Phase1b",
      {accs, accs, bals},
      [sc](const Spec& s_, const State& s, const std::vector<Value>& p)
          -> std::optional<State> {
        const auto a = static_cast<size_t>(p[0].as_int());
        // Find the RequestVote from `sender` at `bal`.
        const Value* rv = nullptr;
        for (const Value& m : s_.get(s, "r1amsgs").as_set()) {
          if (m.at(0) == p[1] && m.at(1) == p[2]) rv = &m;
        }
        if (rv == nullptr) return std::nullopt;
        if (p[2].as_int() <= s_.get(s, "highestBallot").at(a).as_int()) {
          return std::nullopt;
        }
        // Up-to-date check (Fig. 2a lines 8-11 / B.2 Phase1b).
        const int64_t my_li = s_.get(s, "lastIndex").at(a).as_int();
        if (my_li >= 0) {
          const int64_t my_lt = s_.get(s, "raftlogs").at(a)
                                    .at(static_cast<size_t>(my_li))
                                    .at(0).as_int();
          const int64_t c_lt = rv->at(2).as_int();
          const int64_t c_li = rv->at(3).as_int();
          const bool ok = my_lt < c_lt || (my_lt == c_lt && my_li <= c_li);
          if (!ok) return std::nullopt;
        }
        State n = s;
        s_.set(n, "highestBallot", s_.get(s, "highestBallot").with_at(a, p[2]));
        s_.set(n, "isLeader", s_.get(s, "isLeader").with_at(a, V(false)));
        s_.set(n, "r1bmsgs",
               s_.get(s, "r1bmsgs")
                   .with_added(VT(p[0], p[2], mapped_log(s_, s, a, sc.indexes),
                                  s_.get(s, "logTail").at(a))));
        return n;
      }});

  // BecomeLeader: adopt safe values for entries past our lastIndex from the
  // voters' extra entries (B.2 BecomeLeader + UpdateLog).
  sp.add_action(Action{
      "BecomeLeader",
      {accs, masks},
      [sc](const Spec& s_, const State& s, const std::vector<Value>& p)
          -> std::optional<State> {
        const auto a = static_cast<size_t>(p[0].as_int());
        const int mask = static_cast<int>(p[1].as_int());
        if (s_.get(s, "isLeader").at(a).as_bool()) return std::nullopt;
        const int64_t b = s_.get(s, "highestBallot").at(a).as_int();
        if (b < 1 || sc.ballot_owner(b) != static_cast<int>(a)) {
          return std::nullopt;
        }
        int quorum = 1;
        std::vector<Value> logs_in = {mapped_log(s_, s, a, sc.indexes)};
        int64_t max_tail = s_.get(s, "logTail").at(a).as_int();
        for (int x = 0; x < sc.acceptors; ++x) {
          if (x == static_cast<int>(a) || (mask & (1 << x)) == 0) continue;
          const Value* found = nullptr;
          for (const Value& m : s_.get(s, "r1bmsgs").as_set()) {
            if (m.at(0).as_int() == x && m.at(1).as_int() == b) found = &m;
          }
          if (found == nullptr) return std::nullopt;
          logs_in.push_back(found->at(2));
          max_tail = std::max(max_tail, found->at(3).as_int());
          ++quorum;
        }
        if (quorum < sc.majority()) return std::nullopt;
        State n = s;
        // Adopt the highest-ballot entry for every instance (UpdateLog).
        Value rl = s_.get(s, "raftlogs").at(a);
        Value lb = s_.get(s, "logBallot").at(a);
        const int64_t my_last = s_.get(s, "lastIndex").at(a).as_int();
        for (int i = 0; i < sc.indexes; ++i) {
          if (static_cast<int64_t>(i) > max_tail) break;
          if (static_cast<int64_t>(i) <= my_last) continue;  // keep own prefix
          const Value safe =
              detail::highest_ballot_entry(logs_in, static_cast<size_t>(i));
          rl = rl.with_at(static_cast<size_t>(i), VT(V(-1), safe.at(1)));
          lb = lb.with_at(static_cast<size_t>(i), safe.at(0));
        }
        s_.set(n, "raftlogs", s_.get(s, "raftlogs").with_at(a, rl));
        s_.set(n, "logBallot", s_.get(s, "logBallot").with_at(a, lb));
        if (max_tail > s_.get(s, "logTail").at(a).as_int()) {
          s_.set(n, "logTail", s_.get(s, "logTail").with_at(a, V(max_tail)));
        }
        s_.set(n, "isLeader", s_.get(s, "isLeader").with_at(a, V(true)));
        return n;
      }});

  // ProposeEntries — AppendEntries, leader side: propose value v at the next
  // free index with FULL coverage from 0, and mirror Paxos' Phase2a by
  // adding <<j, term, val_j>> to proposedValues for every covered j.
  sp.add_action(Action{
      "ProposeEntries",
      {accs, idxs, vals},
      [sc](const Spec& s_, const State& s, const std::vector<Value>& p)
          -> std::optional<State> {
        const auto a = static_cast<size_t>(p[0].as_int());
        const int64_t i = p[1].as_int();
        if (!s_.get(s, "isLeader").at(a).as_bool()) return std::nullopt;
        if (i != s_.get(s, "logTail").at(a).as_int() + 1) return std::nullopt;
        // One value per (index, ballot): same guard as Paxos' Propose.
        const Value& cur = s_.get(s, "raftlogs").at(a)
                               .at(static_cast<size_t>(i)).at(1);
        if (!cur.is_none() && !(cur == p[2])) return std::nullopt;
        const int64_t b = s_.get(s, "highestBallot").at(a).as_int();
        for (const Value& pv : s_.get(s, "proposedValues").as_set()) {
          if (pv.at(0).as_int() == i && pv.at(1).as_int() == b &&
              !(pv.at(2) == p[2])) {
            return std::nullopt;
          }
        }
        // entries[j] for j in 0..i (creation terms kept; value at i is new).
        Value::Tuple entries;
        for (int64_t j = 0; j < i; ++j) {
          entries.push_back(
              s_.get(s, "raftlogs").at(a).at(static_cast<size_t>(j)));
        }
        entries.push_back(VT(V(b), p[2]));
        State n = s;
        s_.set(n, "proposedEntries",
               s_.get(s, "proposedEntries")
                   .with_added(VT(V(b), V(i), Value::tuple(entries))));
        Value pv = s_.get(s, "proposedValues");
        for (int64_t j = 0; j <= i; ++j) {
          const Value vj = j == i
                               ? p[2]
                               : s_.get(s, "raftlogs").at(a)
                                     .at(static_cast<size_t>(j)).at(1);
          if (!vj.is_none()) pv = pv.with_added(VT(V(j), V(b), vj));
        }
        s_.set(n, "proposedValues", pv);
        return n;
      }});

  // AcceptEntries — (Receive)Append: replace the whole suffix, re-stamp the
  // ballot of every covered entry (difference #3), reject shorter coverage
  // (difference #2 — the guard lIndex >= lastIndex).
  sp.add_action(Action{
      "AcceptEntries",
      {accs, bals, idxs},
      [sc](const Spec& s_, const State& s, const std::vector<Value>& p)
          -> std::optional<State> {
        const auto a = static_cast<size_t>(p[0].as_int());
        const int64_t b = p[1].as_int();
        const int64_t li = p[2].as_int();
        const Value* pe = nullptr;
        for (const Value& m : s_.get(s, "proposedEntries").as_set()) {
          if (m.at(0).as_int() == b && m.at(1).as_int() == li) pe = &m;
        }
        if (pe == nullptr) return std::nullopt;
        const int64_t hb = s_.get(s, "highestBallot").at(a).as_int();
        if (b < hb) return std::nullopt;
        if (li < s_.get(s, "lastIndex").at(a).as_int()) return std::nullopt;
        State n = s;
        s_.set(n, "highestBallot", s_.get(s, "highestBallot").with_at(a, V(b)));
        if (b > hb) {
          s_.set(n, "isLeader", s_.get(s, "isLeader").with_at(a, V(false)));
        }
        Value rl = s_.get(s, "raftlogs").at(a);
        Value lb = s_.get(s, "logBallot").at(a);
        Value votes_a = s_.get(s, "votes").at(a);
        const Value& entries = pe->at(2);
        for (int64_t j = 0; j <= li; ++j) {
          const auto ji = static_cast<size_t>(j);
          rl = rl.with_at(ji, entries.at(ji));
          lb = lb.with_at(ji, V(b));
          const Value& vj = entries.at(ji).at(1);
          if (!vj.is_none()) {
            votes_a = votes_a.with_at(ji, votes_a.at(ji).with_added(VT(V(b), vj)));
          }
        }
        s_.set(n, "raftlogs", s_.get(s, "raftlogs").with_at(a, rl));
        s_.set(n, "logBallot", s_.get(s, "logBallot").with_at(a, lb));
        s_.set(n, "votes", s_.get(s, "votes").with_at(a, votes_a));
        if (li > s_.get(s, "lastIndex").at(a).as_int()) {
          s_.set(n, "lastIndex", s_.get(s, "lastIndex").with_at(a, V(li)));
        }
        if (li > s_.get(s, "logTail").at(a).as_int()) {
          s_.set(n, "logTail", s_.get(s, "logTail").with_at(a, V(li)));
        }
        return n;
      }});

  // --- Raft* invariants (Appendix B.2) -------------------------------------
  sp.add_invariant(Invariant{
      "LogBallotUniform",
      [sc](const Spec& s_, const State& s) {
        // LogBallotInv: covered entries share one ballot (what lets the
        // runtime collapse per-entry ballots into one watermark).
        for (int a = 0; a < sc.acceptors; ++a) {
          const int64_t li =
              s_.get(s, "lastIndex").at(static_cast<size_t>(a)).as_int();
          const Value& lb = s_.get(s, "logBallot").at(static_cast<size_t>(a));
          int64_t expect = -2;
          for (int64_t j = 0; j <= li; ++j) {
            const int64_t bj = lb.at(static_cast<size_t>(j)).as_int();
            if (expect == -2) expect = bj;
            if (bj != expect) return false;
          }
        }
        return true;
      }});

  // --- Fig. 3 refinement mapping -------------------------------------------
  bundle->f.from = bundle->raftstar.get();
  bundle->f.to = bundle->paxos.get();
  const Spec* mp = bundle->paxos.get();
  const ConsensusScope sc2 = sc;
  bundle->f.map_state = [mp, sc2](const Spec& rs, const State& s) {
    State out(mp->vars().size());
    mp->set(out, "highestBallot", rs.get(s, "highestBallot"));
    mp->set(out, "isLeader", rs.get(s, "isLeader"));
    mp->set(out, "logTail", rs.get(s, "logTail"));
    mp->set(out, "votes", rs.get(s, "votes"));
    // logs[a][i] = <<logBallot[a][i], raftlogs[a][i].val>>
    Value::Tuple logs;
    for (int a = 0; a < sc2.acceptors; ++a) {
      logs.push_back(mapped_log(rs, s, static_cast<size_t>(a), sc2.indexes));
    }
    mp->set(out, "logs", Value::tuple(std::move(logs)));
    mp->set(out, "proposedValues", rs.get(s, "proposedValues"));
    // requestVote -> prepare (drop lastTerm/lastIndex).
    Value::Set m1a;
    for (const Value& m : rs.get(s, "r1amsgs").as_set()) {
      m1a.push_back(VT(m.at(0), m.at(1)));
    }
    mp->set(out, "msgs1a", Value::set(std::move(m1a)));
    // requestVoteOK -> prepareOK (already in Paxos form).
    mp->set(out, "msgs1b", rs.get(s, "r1bmsgs"));
    return out;
  };

  // --- Fig. 3 function correspondence --------------------------------------
  auto& corr = bundle->corr;
  corr.entries.push_back({"IncreaseHighestBallot", "IncreaseHighestBallot",
                          nullptr});
  corr.entries.push_back({"Phase1a", "Phase1a", nullptr});
  corr.entries.push_back({"Phase1b", "Phase1b", nullptr});
  corr.entries.push_back({"BecomeLeader", "BecomeLeader", nullptr});
  corr.entries.push_back(
      {"ProposeEntries", "Propose", nullptr});  // params (a, i, v) align
  corr.entries.push_back(
      {"AcceptEntries", "Accept",
       // AcceptEntries(a, b, lIndex) implies Accept(a, i=lIndex, b, v) where
       // v is the accepted value at lIndex.
       [](const Spec& b_spec, const State& pre,
          const std::vector<Value>& p) -> std::vector<Value> {
         const int64_t bal = p[1].as_int();
         const int64_t li = p[2].as_int();
         Value v = Value::none();
         for (const Value& m : b_spec.get(pre, "proposedEntries").as_set()) {
           if (m.at(0).as_int() == bal && m.at(1).as_int() == li) {
             v = m.at(2).at(static_cast<size_t>(li)).at(1);
           }
         }
         return {p[0], V(li), p[1], v};
       }});

  return bundle;
}

}  // namespace praft::specs
